"""Benchmark — scalar vs batched discrete-event online-WDEQ simulation.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_simulation.py --output BENCH_simulation.json

measures ``B`` scalar :func:`repro.simulation.engine.simulate` runs of the
online WDEQ policy against one lockstep
:func:`repro.batch.sim_kernels.simulate_batch` sweep over the same padded
batch (B=256 by default, packing included in the batched timing), and
records the speedup and the maximum completion-time disagreement in the
JSON.  The acceptance bar for the batched simulation path is a >= 5x
speedup at B=256.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.sim_kernels import (
    DeqBatchPolicy,
    WdeqBatchPolicy,
    default_batch_policies,
    simulate_batch,
)
from repro.core.batch import InstanceBatch
from repro.simulation.engine import simulate
from repro.simulation.policies import DeqPolicy, WdeqPolicy
from repro.workloads.generators import cluster_instances


@pytest.fixture(scope="module")
def sim_batch_64x16():
    instances = list(cluster_instances(16, 64, rng=np.random.default_rng(11)))
    return instances, InstanceBatch.from_instances(instances)


def test_simulate_wdeq_scalar_n50(benchmark, cluster_instance_n50):
    result = benchmark(simulate, cluster_instance_n50, WdeqPolicy())
    assert result.completion_times.size == 50


@pytest.mark.benchmark(group="batch-kernels")
def test_simulate_batch_wdeq_64x16(benchmark, sim_batch_64x16):
    _, batch = sim_batch_64x16
    result = benchmark(simulate_batch, batch, WdeqBatchPolicy())
    assert result.completion_times.shape == (64, 16)


@pytest.mark.benchmark(group="batch-kernels")
def test_simulate_batch_deq_64x16(benchmark, sim_batch_64x16):
    _, batch = sim_batch_64x16
    result = benchmark(simulate_batch, batch, DeqBatchPolicy())
    assert np.all(result.num_events >= 1)


def test_simulate_batch_matches_scalar(sim_batch_64x16):
    instances, batch = sim_batch_64x16
    result = simulate_batch(batch, DeqBatchPolicy())
    for b, inst in enumerate(instances[:8]):
        scalar = simulate(inst, DeqPolicy())
        np.testing.assert_allclose(
            result.completion_times[b, : inst.n], scalar.completion_times, rtol=1e-7
        )


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def run_simulation_benchmark(
    batch_size: int = 256, task_count: int = 32, seed: int = 11, repeats: int = 3
) -> tuple[dict, dict]:
    """Scalar vs batched online-WDEQ simulation on the same ``B`` instances."""
    from _common import best_of

    instances = list(
        cluster_instances(task_count, batch_size, rng=np.random.default_rng(seed))
    )
    serial_seconds = best_of(
        lambda: [simulate(inst, WdeqPolicy()) for inst in instances], repeats
    )
    # The batched timing includes the packing step: that is the real cost a
    # caller starting from Instance objects pays.
    batch_seconds = best_of(
        lambda: simulate_batch(InstanceBatch.from_instances(instances), WdeqBatchPolicy()),
        repeats,
    )
    batch = InstanceBatch.from_instances(instances)
    batch_result = simulate_batch(batch, WdeqBatchPolicy())
    disagreement = 0.0
    for b, inst in enumerate(instances):
        scalar = simulate(inst, WdeqPolicy())
        disagreement = max(
            disagreement,
            float(
                np.max(
                    np.abs(batch_result.completion_times[b, : inst.n] - scalar.completion_times)
                )
            ),
        )
    # One lighter sweep over the full policy line-up keeps the whole batched
    # engine (not just WDEQ) under the regression gate.
    lineup_seconds = best_of(
        lambda: [simulate_batch(batch, p) for p in default_batch_policies(batch)], 1
    )
    # Compiled tier (and its float32 throughput mode).  Without numba these
    # time the documented fallback — the identical NumPy path — so the rows
    # are always present and the baseline comparison never sees missing keys;
    # best_of's untimed warm-up call keeps JIT compilation out of the timing.
    from repro.batch.compiled import numba_available

    compiled_seconds = best_of(
        lambda: simulate_batch(batch, WdeqBatchPolicy(), kernel="compiled"), repeats
    )
    compiled_f32_seconds = best_of(
        lambda: simulate_batch(batch, WdeqBatchPolicy(), kernel="compiled", precision="float32"),
        repeats,
    )
    compiled_result = simulate_batch(batch, WdeqBatchPolicy(), kernel="compiled")
    compiled_disagreement = float(
        np.max(np.abs(compiled_result.completion_times - batch_result.completion_times))
    )
    tag = f"B{batch_size}_n{task_count}"
    benchmarks = {
        f"simulate_serial_{tag}": serial_seconds,
        f"simulate_batch_{tag}": batch_seconds,
        f"simulate_batch_lineup_{tag}": lineup_seconds,
        f"simulate_batch_compiled_{tag}": compiled_seconds,
        f"simulate_batch_compiled_f32_{tag}": compiled_f32_seconds,
    }
    derived = {
        f"simulate_batch_speedup_{tag}": serial_seconds / max(batch_seconds, 1e-12),
        f"simulate_compiled_speedup_{tag}": batch_seconds / max(compiled_seconds, 1e-12),
        "max_serial_vs_batch_disagreement": disagreement,
        "max_numpy_vs_compiled_disagreement": compiled_disagreement,
        "mean_events_per_row": float(batch_result.num_events.mean()),
        "numba_available": float(numba_available()),
    }
    return benchmarks, derived


def main(argv=None) -> int:
    import argparse

    from _common import write_payload

    parser = argparse.ArgumentParser(
        description="Discrete-event simulation benchmark (script mode)"
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_simulation.json", help="output JSON path")
    parser.add_argument("--instances", type=int, default=256, help="batch size B")
    parser.add_argument("--tasks", type=int, default=32, help="tasks per instance")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    batch_size = 64 if args.smoke else args.instances
    task_count = 16 if args.smoke else args.tasks
    config = {
        "batch_size": batch_size,
        "task_count": task_count,
        "seed": args.seed,
        "repeats": args.repeats,
        "smoke": args.smoke,
    }
    benchmarks, derived = run_simulation_benchmark(
        batch_size=batch_size, task_count=task_count, seed=args.seed, repeats=args.repeats
    )
    write_payload("simulation", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.2f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.3g}")
    if derived["max_serial_vs_batch_disagreement"] > 1e-6:
        print("ERROR: serial and batched completion times disagree beyond tolerance")
        return 1
    if derived["max_numpy_vs_compiled_disagreement"] > 1e-9:
        print("ERROR: compiled and NumPy event loops disagree beyond tolerance")
        return 1
    speedup_key = f"simulate_batch_speedup_B{batch_size}_n{task_count}"
    if not args.smoke and batch_size >= 256 and derived[speedup_key] < 5.0:
        print("ERROR: batched simulation is below the required 5x speedup at B>=256")
        return 1
    # The compiled tier must buy >= 3x over the NumPy engine — but only
    # where it actually runs: with numba installed, at full scale.
    compiled_key = f"simulate_compiled_speedup_B{batch_size}_n{task_count}"
    if (
        not args.smoke
        and batch_size >= 256
        and derived["numba_available"]
        and derived[compiled_key] < 3.0
    ):
        print("ERROR: compiled event loop is below the required 3x speedup at B>=256")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
