"""Shared fixtures for the benchmark suite.

Every benchmark corresponds to an experiment of DESIGN.md (E1-E9); the
fixtures provide the reference workloads at sizes small enough for a
benchmark run to finish in seconds while still exercising the real code
paths.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generators import (
    cluster_instances,
    homogeneous_halfdelta_deltas,
    large_delta_instances,
    uniform_instances,
)


@pytest.fixture(scope="session")
def uniform_instance_n5():
    """One 5-task instance from the Conjecture 12 family."""
    return next(uniform_instances(5, 1, rng=np.random.default_rng(0)))


@pytest.fixture(scope="session")
def uniform_instance_n4():
    """One 4-task instance from the Conjecture 12 family."""
    return next(uniform_instances(4, 1, rng=np.random.default_rng(1)))


@pytest.fixture(scope="session")
def large_delta_instance_n5():
    """One Theorem 11 instance (delta > P/2, unit weights)."""
    return next(large_delta_instances(5, 1, rng=np.random.default_rng(2)))


@pytest.fixture(scope="session")
def cluster_instance_n50():
    """A 50-task synthetic cluster instance (P = 64)."""
    return next(cluster_instances(50, 1, rng=np.random.default_rng(3)))


@pytest.fixture(scope="session")
def cluster_instance_n200():
    """A 200-task synthetic cluster instance (P = 64)."""
    return next(cluster_instances(200, 1, rng=np.random.default_rng(4)))


@pytest.fixture(scope="session")
def homogeneous_deltas_n12():
    """Caps of a 12-task Section V-B instance."""
    return next(homogeneous_halfdelta_deltas(12, 1, rng=np.random.default_rng(5)))
