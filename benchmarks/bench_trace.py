"""Benchmark — streamed trace replay: throughput and bounded peak memory.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_trace.py --smoke --output BENCH_trace.json

synthesises two traces with ``tools/gen_trace.py`` — a small one and one
several times larger — and measures, each in a **fresh subprocess** so peak
RSS (``resource.getrusage``) is attributable to exactly one workload:

* **Streamed replay** (:func:`repro.scenarios.stream.replay_stream`) of both
  traces: wall-clock seconds land in ``benchmarks`` (compared against the
  committed baseline by ``compare_baseline.py``), rows/s and peak RSS in
  ``derived``.
* **In-memory replay** (the legacy :func:`repro.scenarios.families.load_trace`
  path: every row becomes a ``Task`` object before anything simulates) of the
  same traces, for the memory contrast.

Two gates make the tentpole claim enforceable:

* the streamed peak RSS on the large trace must stay within
  ``MEMORY_GROWTH_LIMIT`` of the small-trace peak (plus a fixed allowance) —
  peak memory is O(chunk), independent of trace length;
* the in-memory peak on the large trace must exceed the streamed peak by a
  clear margin — i.e. the streaming path actually avoids the O(trace) cost
  it was built to avoid.

Run the pytest-benchmark variant with ``pytest benchmarks/bench_trace.py
--benchmark-only``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GEN_TRACE = os.path.join(REPO_ROOT, "tools", "gen_trace.py")

#: Streamed peak RSS on the large trace may be at most this multiple of the
#: small-trace peak (the interpreter + NumPy baseline dominates both)...
MEMORY_GROWTH_LIMIT = 1.35
#: ...plus this absolute allowance, so tiny absolute wobbles (allocator
#: pools, import order) cannot fail the ratio on small smoke traces.
MEMORY_GROWTH_SLACK_MB = 24.0
#: The in-memory path must pay at least this much more RSS than the
#: streamed path on the large trace — the O(trace) vs O(chunk) contrast.
INMEMORY_MARGIN_MB = 24.0


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def generate_trace(path: str, rows: int, seed: int, release_rate: float = 1.0) -> None:
    """Synthesise a trace via tools/gen_trace.py (its own process, O(1) RAM)."""
    subprocess.run(
        [
            sys.executable, GEN_TRACE, "--out", path, "--rows", str(rows),
            "--seed", str(seed), "--release-rate", str(release_rate),
        ],
        check=True,
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL,
    )


def measure(mode: str, trace: str, chunk_size: int) -> dict:
    """Run one replay in a fresh interpreter; returns its timing + peak RSS.

    A subprocess per measurement is what makes ``ru_maxrss`` meaningful: the
    high-water mark belongs to exactly one workload, not to whatever the
    benchmark driver touched before.
    """
    code = (
        "import json, resource, sys, time\n"
        "mode, trace, chunk = sys.argv[1], sys.argv[2], int(sys.argv[3])\n"
        "start = time.perf_counter()\n"
        "if mode == 'streamed':\n"
        "    from repro.scenarios.stream import replay_stream\n"
        "    per_policy, total = replay_stream(\n"
        "        trace, 8.0, chunk_size=chunk, policies=('WDEQ',))\n"
        "else:\n"
        "    import numpy as np\n"
        "    from repro.core.batch import InstanceBatch\n"
        "    from repro.scenarios.families import load_trace\n"
        "    from repro.scenarios.stream import _simulate_rows\n"
        "    instances, releases = load_trace(trace, 8.0)\n"
        "    batch = InstanceBatch.from_instances(instances)\n"
        "    triples = _simulate_rows('WDEQ', 'numpy', 'float64', batch,\n"
        "                             {'releases': releases} if releases is not None else None)\n"
        "    total = batch.batch_size\n"
        "    per_policy = {'WDEQ': {'mean_ratio': float(np.mean([t[0] for t in triples]))}}\n"
        "seconds = time.perf_counter() - start\n"
        "rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
        "peak_mb = rss / 1e6 if sys.platform == 'darwin' else rss / 1024.0\n"
        "print(json.dumps({'seconds': seconds, 'peak_mb': peak_mb, 'instances': total,\n"
        "                  'mean_ratio': per_policy['WDEQ']['mean_ratio']}))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code, mode, trace, str(chunk_size)],
        check=True,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def run_trace_benchmark(
    small_rows: int, big_rows: int, chunk_size: int, seed: int, workdir: str
) -> "tuple[dict, dict]":
    """Measure streamed + in-memory replay of a small and a large trace."""
    small = os.path.join(workdir, "trace_small.csv")
    big = os.path.join(workdir, "trace_big.csv")
    generate_trace(small, small_rows, seed)
    generate_trace(big, big_rows, seed + 1)

    streamed_small = measure("streamed", small, chunk_size)
    streamed_big = measure("streamed", big, chunk_size)
    inmemory_small = measure("inmemory", small, chunk_size)
    inmemory_big = measure("inmemory", big, chunk_size)

    benchmarks = {
        "trace_streamed_small_seconds": streamed_small["seconds"],
        "trace_streamed_big_seconds": streamed_big["seconds"],
        "trace_inmemory_small_seconds": inmemory_small["seconds"],
    }
    derived = {
        "trace_small_rows": float(small_rows),
        "trace_big_rows": float(big_rows),
        "trace_big_instances": float(streamed_big["instances"]),
        "trace_streamed_rows_per_s_big": big_rows / max(streamed_big["seconds"], 1e-9),
        "trace_streamed_peak_mb_small": streamed_small["peak_mb"],
        "trace_streamed_peak_mb_big": streamed_big["peak_mb"],
        "trace_inmemory_peak_mb_small": inmemory_small["peak_mb"],
        "trace_inmemory_peak_mb_big": inmemory_big["peak_mb"],
        "trace_streamed_peak_growth": streamed_big["peak_mb"]
        / max(streamed_small["peak_mb"], 1e-9),
        "trace_inmemory_over_streamed_mb": inmemory_big["peak_mb"]
        - streamed_big["peak_mb"],
    }
    return benchmarks, derived


def check_gates(derived: dict) -> list[str]:
    """The two memory gates; returns human-readable failures (empty = pass)."""
    failures = []
    limit = derived["trace_streamed_peak_mb_small"] * MEMORY_GROWTH_LIMIT + MEMORY_GROWTH_SLACK_MB
    if derived["trace_streamed_peak_mb_big"] > limit:
        failures.append(
            f"streamed peak RSS grows with trace length: "
            f"{derived['trace_streamed_peak_mb_big']:.1f} MB on the big trace vs "
            f"{derived['trace_streamed_peak_mb_small']:.1f} MB on the small one "
            f"(limit {limit:.1f} MB) — expected O(chunk), not O(trace)"
        )
    if derived["trace_inmemory_over_streamed_mb"] < INMEMORY_MARGIN_MB:
        failures.append(
            f"in-memory replay only used "
            f"{derived['trace_inmemory_over_streamed_mb']:.1f} MB more than the "
            f"streamed path on the big trace (expected >= {INMEMORY_MARGIN_MB} MB) — "
            "the benchmark no longer demonstrates the O(trace) contrast"
        )
    return failures


# --------------------------------------------------------------------- #
# pytest-benchmark variant
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def small_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "bench_small.csv")
    generate_trace(path, rows=4000, seed=7)
    return path


@pytest.mark.benchmark(group="trace")
def test_streamed_replay(benchmark, small_trace):
    from repro.scenarios.stream import replay_stream

    per_policy, total = benchmark(
        replay_stream, small_trace, 8.0, chunk_size=256, policies=("WDEQ",)
    )
    assert total > 0 and "WDEQ" in per_policy


def test_streamed_matches_inmemory(small_trace):
    from repro.core.batch import InstanceBatch
    from repro.scenarios.families import load_trace
    from repro.scenarios.stream import _simulate_rows, replay_stream

    per_policy, total = replay_stream(small_trace, 8.0, chunk_size=100, policies=("WDEQ",))
    instances, releases = load_trace(small_trace, 8.0)
    batch = InstanceBatch.from_instances(instances)
    triples = _simulate_rows(
        "WDEQ", "numpy", "float64", batch,
        {"releases": releases} if releases is not None else None,
    )
    assert total == batch.batch_size
    ratios = np.array([t[0] for t in triples])
    assert per_policy["WDEQ"]["mean_ratio"] == pytest.approx(ratios.mean(), rel=1e-9)
    assert per_policy["WDEQ"]["max_ratio"] == pytest.approx(ratios.max(), rel=1e-12)


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    import argparse
    import tempfile

    from _common import write_payload

    parser = argparse.ArgumentParser(
        description="Streamed trace-replay benchmark (script mode)"
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_trace.json", help="output JSON path")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    if args.smoke:
        small_rows, big_rows, chunk_size = 30_000, 120_000, 2048
    else:
        small_rows, big_rows, chunk_size = 120_000, 1_200_000, 4096
    config = {
        "small_rows": small_rows,
        "big_rows": big_rows,
        "chunk_size": chunk_size,
        "seed": args.seed,
        "smoke": args.smoke,
    }
    with tempfile.TemporaryDirectory(prefix="bench_trace_") as workdir:
        benchmarks, derived = run_trace_benchmark(
            small_rows, big_rows, chunk_size, args.seed, workdir
        )
    write_payload("trace", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.1f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.4g}")
    failures = check_gates(derived)
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
