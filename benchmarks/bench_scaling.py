"""Benchmark E7 — runtime scaling of the solvers (Table I discussion).

This is the pytest-benchmark counterpart of ``repro.experiments.exp_scaling``:
it times the polynomial solvers (WDEQ, Water-Filling, greedy, makespan,
max-lateness), the fixed-ordering LP with both backends, and the vectorized
batch kernels, so their scaling can be compared across runs.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_scaling.py --smoke --output BENCH_scaling.json

writes a machine-readable JSON summary; ``benchmarks/compare_baseline.py``
gates regressions against ``benchmarks/baselines/BENCH_scaling_baseline.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.greedy import greedy_completion_times
from repro.algorithms.lateness import minimize_max_lateness
from repro.algorithms.makespan import minimal_makespan
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.batch.kernels import PaddedBatch, water_filling_batch, wdeq_batch
from repro.lp.interface import solve_ordered_relaxation
from repro.experiments import run_experiment
from repro.workloads.generators import cluster_instances


@pytest.mark.benchmark(group="polynomial-solvers")
def test_wdeq_n200(benchmark, cluster_instance_n200):
    benchmark(wdeq_schedule, cluster_instance_n200)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_water_filling_n200(benchmark, cluster_instance_n200):
    completions = wdeq_schedule(cluster_instance_n200).completion_times_by_task()
    benchmark(water_filling_schedule, cluster_instance_n200, completions)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_greedy_n200(benchmark, cluster_instance_n200):
    order = cluster_instance_n200.smith_order()
    benchmark(greedy_completion_times, cluster_instance_n200, order)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_makespan_n200(benchmark, cluster_instance_n200):
    benchmark(minimal_makespan, cluster_instance_n200)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_max_lateness_n50(benchmark, cluster_instance_n50):
    deadlines = wdeq_schedule(cluster_instance_n50).completion_times_by_task()
    benchmark.pedantic(
        minimize_max_lateness,
        args=(cluster_instance_n50, deadlines),
        iterations=1,
        rounds=3,
    )


def _prefix_instance(instance, n):
    """First ``n`` tasks of a larger instance, same platform."""
    from repro.core.instance import Instance

    return Instance(P=instance.P, tasks=instance.tasks[:n])


@pytest.mark.benchmark(group="lp-backends")
def test_ordered_lp_highs_n20(benchmark, cluster_instance_n200):
    inst = _prefix_instance(cluster_instance_n200, 20)
    order = inst.smith_order()
    benchmark(solve_ordered_relaxation, inst, order, "scipy", False)


@pytest.mark.benchmark(group="lp-backends")
def test_ordered_lp_simplex_n10(benchmark, cluster_instance_n200):
    inst = _prefix_instance(cluster_instance_n200, 10)
    order = inst.smith_order()
    benchmark.pedantic(
        solve_ordered_relaxation,
        args=(inst, order, "simplex", False),
        iterations=1,
        rounds=3,
    )


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e7_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E7",),
        kwargs={"sizes": (10, 50), "lp_sizes": (5,), "simplex_sizes": (5,), "batch_sizes": ()},
        iterations=1,
        rounds=1,
    )
    assert result.summary["table I coverage rows"] == 9


@pytest.fixture(scope="module")
def cluster_batch_64x16():
    instances = list(cluster_instances(16, 64, rng=np.random.default_rng(7)))
    return instances, PaddedBatch.from_instances(instances)


@pytest.mark.benchmark(group="batch-kernels")
def test_wdeq_batch_64x16(benchmark, cluster_batch_64x16):
    _, batch = cluster_batch_64x16
    completions = benchmark(wdeq_batch, batch)
    assert completions.shape == (64, 16)


@pytest.mark.benchmark(group="batch-kernels")
def test_wdeq_serial_64x16(benchmark, cluster_batch_64x16):
    instances, _ = cluster_batch_64x16
    benchmark(lambda: [wdeq_schedule(inst) for inst in instances])


@pytest.mark.benchmark(group="batch-kernels")
def test_water_filling_batch_64x16(benchmark, cluster_batch_64x16):
    _, batch = cluster_batch_64x16
    completions = wdeq_batch(batch)
    result = benchmark(water_filling_batch, batch, completions)
    assert result.rates.shape == (64, 16, 16)


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def run_scaling_benchmark(
    sizes=(50, 200),
    batch_size: int = 64,
    batch_task_count: int = 32,
    seed: int = 3,
    repeats: int = 3,
) -> tuple[dict, dict]:
    """Time the scalar solvers and the batch kernels; return (benchmarks, derived)."""
    from _common import best_of

    rng = np.random.default_rng(seed)
    benchmarks: dict[str, float] = {}
    for n in sizes:
        inst = next(cluster_instances(n, 1, rng=rng))
        benchmarks[f"wdeq_n{n}"] = best_of(lambda: wdeq_schedule(inst), repeats)
        completions = wdeq_schedule(inst).completion_times_by_task()
        benchmarks[f"water_filling_n{n}"] = best_of(
            lambda: water_filling_schedule(inst, completions), repeats
        )
        order = inst.smith_order()
        benchmarks[f"greedy_n{n}"] = best_of(
            lambda: greedy_completion_times(inst, order), repeats
        )
        benchmarks[f"makespan_n{n}"] = best_of(lambda: minimal_makespan(inst), repeats)

    instances = list(
        cluster_instances(batch_task_count, batch_size, rng=np.random.default_rng(seed + 1))
    )
    tag = f"B{batch_size}_n{batch_task_count}"
    benchmarks[f"wdeq_serial_{tag}"] = best_of(
        lambda: [wdeq_schedule(inst) for inst in instances], repeats
    )
    benchmarks[f"wdeq_batch_{tag}"] = best_of(
        lambda: wdeq_batch(PaddedBatch.from_instances(instances)), repeats
    )
    batch = PaddedBatch.from_instances(instances)
    completions = wdeq_batch(batch)
    benchmarks[f"water_filling_batch_{tag}"] = best_of(
        lambda: water_filling_batch(batch, completions), repeats
    )
    derived = {
        f"wdeq_batch_speedup_{tag}": benchmarks[f"wdeq_serial_{tag}"]
        / max(benchmarks[f"wdeq_batch_{tag}"], 1e-12)
    }
    return benchmarks, derived


def main(argv=None) -> int:
    import argparse

    from _common import write_payload

    parser = argparse.ArgumentParser(description="Runtime-scaling benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_scaling.json", help="output JSON path")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    config = {
        "sizes": [20, 50] if args.smoke else [50, 200],
        "batch_size": 64 if args.smoke else 256,
        "batch_task_count": 16 if args.smoke else 32,
        "seed": args.seed,
        "repeats": args.repeats,
        "smoke": args.smoke,
    }
    benchmarks, derived = run_scaling_benchmark(
        sizes=tuple(config["sizes"]),
        batch_size=config["batch_size"],
        batch_task_count=config["batch_task_count"],
        seed=args.seed,
        repeats=args.repeats,
    )
    write_payload("scaling", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.2f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
