"""Benchmark E7 — runtime scaling of the solvers (Table I discussion).

This is the pytest-benchmark counterpart of ``repro.experiments.exp_scaling``:
it times the polynomial solvers (WDEQ, Water-Filling, greedy, makespan,
max-lateness) and the fixed-ordering LP with both backends so their scaling
can be compared across runs.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import greedy_completion_times
from repro.algorithms.lateness import minimize_max_lateness
from repro.algorithms.makespan import minimal_makespan
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.lp.interface import solve_ordered_relaxation
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="polynomial-solvers")
def test_wdeq_n200(benchmark, cluster_instance_n200):
    benchmark(wdeq_schedule, cluster_instance_n200)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_water_filling_n200(benchmark, cluster_instance_n200):
    completions = wdeq_schedule(cluster_instance_n200).completion_times_by_task()
    benchmark(water_filling_schedule, cluster_instance_n200, completions)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_greedy_n200(benchmark, cluster_instance_n200):
    order = cluster_instance_n200.smith_order()
    benchmark(greedy_completion_times, cluster_instance_n200, order)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_makespan_n200(benchmark, cluster_instance_n200):
    benchmark(minimal_makespan, cluster_instance_n200)


@pytest.mark.benchmark(group="polynomial-solvers")
def test_max_lateness_n50(benchmark, cluster_instance_n50):
    deadlines = wdeq_schedule(cluster_instance_n50).completion_times_by_task()
    benchmark.pedantic(
        minimize_max_lateness,
        args=(cluster_instance_n50, deadlines),
        iterations=1,
        rounds=3,
    )


def _prefix_instance(instance, n):
    """First ``n`` tasks of a larger instance, same platform."""
    from repro.core.instance import Instance

    return Instance(P=instance.P, tasks=instance.tasks[:n])


@pytest.mark.benchmark(group="lp-backends")
def test_ordered_lp_highs_n20(benchmark, cluster_instance_n200):
    inst = _prefix_instance(cluster_instance_n200, 20)
    order = inst.smith_order()
    benchmark(solve_ordered_relaxation, inst, order, "scipy", False)


@pytest.mark.benchmark(group="lp-backends")
def test_ordered_lp_simplex_n10(benchmark, cluster_instance_n200):
    inst = _prefix_instance(cluster_instance_n200, 10)
    order = inst.smith_order()
    benchmark.pedantic(
        solve_ordered_relaxation,
        args=(inst, order, "simplex", False),
        iterations=1,
        rounds=3,
    )


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e7_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E7",),
        kwargs={"sizes": (10, 50), "lp_sizes": (5,), "simplex_sizes": (5,)},
        iterations=1,
        rounds=1,
    )
    assert result.summary["table I coverage rows"] == 9
