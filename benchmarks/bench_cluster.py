"""Benchmark — the multi-node cluster backend vs the local process pool.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_cluster.py --smoke --output BENCH_cluster.json

spawns two *real* localhost worker subprocesses (``malleable-repro
workers``), runs the same sweep-cell workload through three executors and
records the per-sweep wall time:

* ``cluster_sweep_*`` — the :class:`~repro.exec.cluster.ClusterCoordinator`
  sharding the cells over the two workers (socket dispatch, pickled
  records back per cell);
* ``pool_sweep_*`` — ``backend="process-pool"`` with two local workers
  (the apples-to-apples comparison: same parallelism, no sockets);
* ``serial_sweep_*`` — the single-process reference.

``derived`` carries the cluster/pool overhead ratio plus the coordinator's
dispatch stats, and ``cluster_batch_repush_*`` checks the per-node batch
reuse: a repeated ``map_batch`` over the same rows must push **zero** new
batches (rows ship once per host, then only chunk indices travel).

The cluster numbers include the coordinator's connection handshake
amortised away (the coordinator is connected once, outside the timed
region) but *not* worker start-up — workers are long-lived by design.

Run the pytest-benchmark variant with ``pytest benchmarks/bench_cluster.py
--benchmark-only`` (it uses in-process worker nodes, no subprocesses).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import ExecutionContext
from repro.scenarios import ScenarioSpec, SweepRunner

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
BENCH_DIR = str(Path(__file__).resolve().parent)

_ADDRESS_RE = re.compile(r"cluster worker (\S+) listening on (\S+:\d+)")

START_TIMEOUT = 30.0


def sweep_spec(cells: int, count: int) -> ScenarioSpec:
    """A sweep with ``cells`` cells of ``count`` instances each."""
    return ScenarioSpec(
        name=f"bench-cluster-c{cells}",
        generator="uniform_instances",
        grid={"n": [4 + i for i in range(cells)]},
        count=count,
        policies=("WDEQ", "DEQ"),
    )


def spawn_workers(count: int) -> "tuple[subprocess.Popen, list[str]]":
    """Launch ``count`` worker nodes in one subprocess; returns (proc, hosts)."""
    env = dict(os.environ)
    # BENCH_DIR so workers can unpickle `bench_cluster._batch_total_volume`
    # by reference (functions ship as module+name, never as code).
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + BENCH_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "workers", "--port", "0", "--count", str(count)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    hosts: "list[str]" = []
    deadline = time.monotonic() + START_TIMEOUT
    assert process.stdout is not None
    while len(hosts) < count:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError(f"workers printed {len(hosts)}/{count} addresses")
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(f"worker process exited early (rc={process.poll()})")
        match = _ADDRESS_RE.search(line)
        if match:
            hosts.append(match.group(2))
    return process, hosts


def run_sweep_benchmark(
    cells: int, count: int, workers: int = 2, seed: int = 7, repeats: int = 3
) -> "tuple[dict, dict]":
    """Time one full sweep per executor; cache bypassed (map_cells direct)."""
    from _common import best_of

    spec = sweep_spec(cells, count)
    tag = f"c{cells}_w{workers}"
    benchmarks: dict = {}
    derived: dict = {}

    process, hosts = spawn_workers(workers)
    try:
        with ExecutionContext(
            backend="cluster", hosts=hosts, seed=seed, lp_backend="scipy"
        ) as cluster_ctx:
            payloads = SweepRunner(spec, cluster_ctx).payloads()
            cluster_ctx.cluster()  # connect outside the timed region
            benchmarks[f"cluster_sweep_{tag}"] = best_of(
                lambda: cluster_ctx.map_cells(payloads), repeats
            )
            stats = dict(cluster_ctx.coordinator.stats)
            derived[f"cluster_dispatched_{tag}"] = float(stats["dispatched"])
            derived[f"cluster_retries_{tag}"] = float(stats["retries"])

            # Batch reuse: pushing the same rows twice must be free the
            # second time (fingerprint hit on every node).
            import importlib

            from repro.core.batch import InstanceBatch
            from repro.workloads import uniform_instances

            # Resolve the chunk function through its importable module name:
            # when this file runs as a script the module-level reference
            # lives in ``__main__``, which the workers cannot import.
            fn = importlib.import_module("bench_cluster")._batch_total_volume
            instances = list(uniform_instances(n=24, count=16, rng=seed))
            batch = InstanceBatch.from_instances(instances)
            cluster_ctx.map_batch(fn, batch)
            pushed_first = cluster_ctx.coordinator.stats["batches_pushed"]
            cluster_ctx.map_batch(fn, batch)
            repushed = cluster_ctx.coordinator.stats["batches_pushed"] - pushed_first
            derived[f"cluster_batch_repush_{tag}"] = float(repushed)
            assert repushed == 0, "batch rows were re-shipped on a warm node"
    finally:
        process.terminate()
        process.wait(timeout=START_TIMEOUT)
        if process.stdout is not None:
            process.stdout.close()

    with ExecutionContext(
        backend="process-pool", workers=workers, seed=seed, lp_backend="scipy"
    ) as pool_ctx:
        payloads = SweepRunner(spec, pool_ctx).payloads()
        benchmarks[f"pool_sweep_{tag}"] = best_of(
            lambda: pool_ctx.map_cells(payloads), repeats
        )

    with ExecutionContext(seed=seed, lp_backend="scipy") as serial_ctx:
        payloads = SweepRunner(spec, serial_ctx).payloads()
        benchmarks[f"serial_sweep_{tag}"] = best_of(
            lambda: serial_ctx.map_cells(payloads), repeats
        )

    derived[f"cluster_vs_pool_{tag}"] = benchmarks[f"cluster_sweep_{tag}"] / max(
        benchmarks[f"pool_sweep_{tag}"], 1e-12
    )
    derived[f"cells_{tag}"] = float(cells)
    return benchmarks, derived


def _batch_total_volume(sub):
    """Module-level so cluster workers can unpickle it by reference."""
    return [float(v) for v in sub.volumes.sum(axis=1)]


# --------------------------------------------------------------------- #
# pytest-benchmark variant (in-process worker nodes — no subprocesses)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def local_cluster():
    from repro.exec.cluster import ClusterCoordinator, WorkerNode

    nodes = [WorkerNode(port=0, worker_id=f"bench{i}") for i in range(2)]
    for node in nodes:
        node.start()
    coordinator = ClusterCoordinator([node.address for node in nodes])
    coordinator.connect()
    yield coordinator
    coordinator.close()
    for node in nodes:
        node.stop()


@pytest.mark.benchmark(group="cluster")
def test_cluster_map_cells(benchmark, local_cluster):
    spec = sweep_spec(cells=2, count=2)
    with ExecutionContext(
        backend="cluster", coordinator=local_cluster, seed=7, lp_backend="scipy"
    ) as ctx:
        payloads = SweepRunner(spec, ctx).payloads()
        results = benchmark(local_cluster.map_cells, payloads)
    assert len(results) == len(payloads)


@pytest.mark.benchmark(group="cluster")
def test_serial_map_cells(benchmark):
    spec = sweep_spec(cells=2, count=2)
    with ExecutionContext(seed=7, lp_backend="scipy") as ctx:
        payloads = SweepRunner(spec, ctx).payloads()
        results = benchmark(ctx.map_cells, payloads)
    assert len(results) == len(payloads)


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    import argparse

    from _common import write_payload

    parser = argparse.ArgumentParser(
        description="Cluster backend benchmark (script mode)"
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_cluster.json", help="output JSON path")
    parser.add_argument("--workers", type=int, default=2, help="localhost worker nodes")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        cells, count, repeats = 4, 2, 2
    else:
        cells, count, repeats = 8, 6, 3
    config = {
        "cells": cells,
        "count": count,
        "workers": args.workers,
        "seed": args.seed,
        "smoke": args.smoke,
    }
    benchmarks, derived = run_sweep_benchmark(
        cells=cells, count=count, workers=args.workers, seed=args.seed, repeats=repeats
    )
    write_payload("cluster", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.4f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.4g}")
    tag = f"c{cells}_w{args.workers}"
    if derived[f"cluster_batch_repush_{tag}"] != 0:
        print("ERROR: warm nodes re-shipped batch rows")
        return 1
    if derived[f"cluster_retries_{tag}"] != 0:
        print("ERROR: a healthy localhost fleet needed retries")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
