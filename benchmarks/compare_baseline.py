"""Gate benchmark regressions against a committed baseline.

Used by the CI benchmark-smoke job::

    python benchmarks/compare_baseline.py \
        --baseline benchmarks/baselines/BENCH_scaling_baseline.json \
        --new BENCH_scaling.json --max-regression 2.0

Each benchmark time in the new payload is compared against the baseline
after normalising by the two payloads' *calibration* measurements (a fixed
NumPy workload timed on both machines), so a slower CI runner does not read
as a regression.  The check fails when any normalised time exceeds
``max_regression`` times its baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["compare", "main"]

#: The calibration correction is clamped to this band: beyond it the two
#: machines are too dissimilar for a meaningful scalar correction and we
#: fall back to the band edge (conservative in both directions).
CALIBRATION_CLAMP = (0.25, 4.0)

#: Absolute slack added to every allowance.  Microsecond-scale baselines
#: (e.g. the makespan solver) would otherwise flag pure scheduler jitter on
#: a shared CI runner as a 2x "regression"; one millisecond of slack is far
#: below any real regression in the kernels this suite watches.
MIN_SLACK_SECONDS = 1e-3


def compare(
    baseline: dict,
    new: dict,
    max_regression: float = 2.0,
    min_slack: float = MIN_SLACK_SECONDS,
) -> list[str]:
    """Return one message per regressed benchmark (empty list = pass)."""
    base_cal = float(baseline.get("calibration_seconds", 0.0))
    new_cal = float(new.get("calibration_seconds", 0.0))
    if base_cal > 0 and new_cal > 0:
        correction = min(max(new_cal / base_cal, CALIBRATION_CLAMP[0]), CALIBRATION_CLAMP[1])
    else:
        correction = 1.0
    failures = []
    for name, base_seconds in sorted(baseline.get("benchmarks", {}).items()):
        new_seconds = new.get("benchmarks", {}).get(name)
        if new_seconds is None:
            failures.append(f"{name}: present in baseline but missing from the new run")
            continue
        base_seconds = float(base_seconds)
        if base_seconds <= 0:
            continue
        allowed = base_seconds * correction * max_regression + min_slack
        status = "ok" if new_seconds <= allowed else "REGRESSION"
        print(
            f"  {name}: baseline {base_seconds * 1e3:.2f} ms, "
            f"new {new_seconds * 1e3:.2f} ms, allowed {allowed * 1e3:.2f} ms "
            f"(calibration x{correction:.2f}) -> {status}"
        )
        if new_seconds > allowed:
            failures.append(
                f"{name}: {new_seconds * 1e3:.2f} ms exceeds the allowed "
                f"{allowed * 1e3:.2f} ms ({max_regression}x baseline, calibrated)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Compare a benchmark JSON to its baseline")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--new", required=True, dest="new_path", help="freshly measured JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when a benchmark is slower than this factor times the baseline",
    )
    parser.add_argument(
        "--min-slack",
        type=float,
        default=MIN_SLACK_SECONDS,
        help="absolute slack in seconds added to every allowance (jitter floor)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.new_path, "r", encoding="utf-8") as handle:
        new = json.load(handle)
    failures = compare(baseline, new, args.max_regression, args.min_slack)
    if failures:
        print("benchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("benchmark regression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
