"""Benchmark E8 — the bandwidth-sharing master-worker scenario (Figure 1)."""

from __future__ import annotations

import pytest

from repro.bandwidth.network import BandwidthScenario
from repro.bandwidth.transfer import plan_transfers, scenario_to_instance
from repro.experiments import run_experiment
from repro.simulation.nonclairvoyant import run_wdeq_online


@pytest.fixture(scope="module")
def scenario_20_workers():
    return BandwidthScenario.random(20, rng=0)


def test_plan_transfers_20_workers(benchmark, scenario_20_workers):
    plans = benchmark.pedantic(
        plan_transfers, args=(scenario_20_workers,), iterations=1, rounds=3
    )
    by_name = {p.strategy: p for p in plans}
    assert by_name["WDEQ"].throughput(scenario_20_workers) >= (
        by_name["sequential"].throughput(scenario_20_workers) - 1e-6
    )


def test_wdeq_transfer_simulation_20_workers(benchmark, scenario_20_workers):
    instance = scenario_to_instance(scenario_20_workers)
    result = benchmark(run_wdeq_online, instance)
    assert result.completion_times.size == 20


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e8_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E8",),
        kwargs={"worker_counts": (5,), "count": 2},
        iterations=1,
        rounds=1,
    )
    assert result.summary["WDEQ >= best naive strategy on average"] is True
