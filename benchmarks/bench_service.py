"""Benchmark — the online scheduling service and its incremental state.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_service.py --output BENCH_service.json

measures two things:

* **Incremental vs from-scratch queries.**  A live system is loaded with
  ``live_tasks`` concurrently running tasks, then a share query at a
  slightly later time is answered two ways: incrementally
  (:meth:`repro.service.LiveSystemState.advance_to` from the current
  clock — one horizon step) and from scratch (re-initialising the engine
  at ``t = 0`` and replaying the entire submission history up to the query
  time, which is what a service without resumable state would have to do
  per query).  The speedup is recorded in ``derived`` and gated at >= 5x
  for the full (1000-task) configuration — in practice it is orders of
  magnitude, since the replay walks one event per historical arrival.
* **Service throughput.**  The NDJSON loadgen replays an open-loop
  Poisson workload against an in-process asyncio server; requests/s and
  the conservative p50/p99 latency estimates land in the payload
  (latencies under ``benchmarks`` as seconds, throughput in ``derived``).

Run the pytest-benchmark variant with ``pytest benchmarks/bench_service.py
--benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.sim_kernels import advance_simulation_state, init_simulation_state
from repro.core.batch import InstanceBatch
from repro.service.state import LiveSystemState, make_policy


def _loaded_system(
    live_tasks: int, P: float, seed: int
) -> "tuple[LiveSystemState, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """A live system with ``live_tasks`` still-running tasks, plus its history."""
    rng = np.random.default_rng(seed)
    submit_times = np.sort(rng.uniform(0.0, 10.0, live_tasks))
    # Volumes far exceed what P processors finish over the warm-up window,
    # so every task is still live when the measurement starts.
    volumes = rng.uniform(200.0, 400.0, live_tasks)
    weights = rng.uniform(0.5, 3.0, live_tasks)
    deltas = rng.uniform(0.5, 4.0, live_tasks)
    live = LiveSystemState(P=P, policy="wdeq")
    for k in range(live_tasks):
        live.submit(volumes[k], weights[k], deltas[k], now=float(submit_times[k]))
    live.advance_to(11.0)
    assert live.live_count == live_tasks
    return live, submit_times, volumes, weights, deltas


def _replay_from_scratch(
    P: float,
    submit_times: np.ndarray,
    volumes: np.ndarray,
    weights: np.ndarray,
    deltas: np.ndarray,
    until: float,
) -> None:
    """What a non-resumable service pays per query: replay history from t=0."""
    batch = InstanceBatch.from_arrays(
        P=np.array([P]),
        volumes=volumes[None, :],
        weights=weights[None, :],
        deltas=np.minimum(deltas, P)[None, :],
    )
    state = init_simulation_state(batch, release_times=submit_times[None, :])
    advance_simulation_state(state, make_policy("wdeq"), until=until)


def run_incremental_benchmark(
    live_tasks: int, queries: int = 50, P: float = 64.0, seed: int = 21
) -> "tuple[dict, dict]":
    """Per-query cost, incremental vs from-scratch, at ``live_tasks`` live."""
    import time

    from _common import best_of

    live, submit_times, volumes, weights, deltas = _loaded_system(live_tasks, P, seed)
    task_ids = list(live.records)

    # Incremental: each query advances the resumable state by one small
    # horizon step.  Amortise over `queries` strictly increasing times.
    start = time.perf_counter()
    now = live.now
    for q in range(queries):
        now += 1e-4
        live.share_of(task_ids[q % len(task_ids)], now=now)
    incremental_seconds = (time.perf_counter() - start) / queries

    replay_seconds = best_of(
        lambda: _replay_from_scratch(P, submit_times, volumes, weights, deltas, until=11.0),
        3,
    )

    tag = f"n{live_tasks}"
    benchmarks = {
        f"service_query_incremental_{tag}": incremental_seconds,
        f"service_query_replay_{tag}": replay_seconds,
    }
    derived = {
        f"service_incremental_speedup_{tag}": replay_seconds / max(incremental_seconds, 1e-12),
    }
    return benchmarks, derived


def run_throughput_benchmark(
    clients: int,
    tasks_per_client: int,
    seed: int = 5,
    journal_dir: "str | None" = None,
    tag_suffix: str = "",
) -> "tuple[dict, dict]":
    """Loadgen against an in-process asyncio server; rps and latency tails.

    With ``journal_dir`` the server runs *durable* (write-ahead journal,
    ``fsync='interval'``) — the configuration the journaled-throughput gate
    compares against the in-memory run.
    """
    import asyncio

    from repro.service import LoadgenConfig, SchedulerService, ServiceConfig, run_loadgen_async

    async def body():
        service = SchedulerService(
            ServiceConfig(port=0, P=64.0, journal_dir=journal_dir, fsync="interval")
        )
        await service.start()
        host, port = service.address
        try:
            config = LoadgenConfig(
                host=host,
                port=port,
                clients=clients,
                tasks_per_client=tasks_per_client,
                arrival="poisson",
                rate=500.0,
                query_ratio=0.25,
                cancel_ratio=0.05,
                seed=seed,
            )
            return await run_loadgen_async(config)
        finally:
            await service.shutdown()

    report = asyncio.run(body())
    tag = f"c{clients}_t{tasks_per_client}{tag_suffix}"
    benchmarks = {
        f"service_latency_p50_{tag}": float(report.latency.get("p50", 0.0)),
        f"service_latency_p99_{tag}": float(report.latency.get("p99", 0.0)),
    }
    derived = {
        f"service_rps_{tag}": report.rps,
        f"service_requests_{tag}": float(report.requests),
        f"service_errors_{tag}": float(report.errors + report.protocol_errors),
    }
    return benchmarks, derived


def _journaled_history(
    journal_dir: str, events: int, P: float, seed: int, snapshot_every: int
) -> None:
    """Write an ``events``-record journal backed by a realistic live system.

    Volumes are small relative to ``P`` so tasks complete and the live set
    stays bounded — recovery therefore replays records at a steady
    per-event cost instead of an ever-growing one.  ``snapshot_every``
    mirrors the server knob: 0 leaves the full history in the journal,
    anything else writes periodic snapshots exactly as a live server would.
    """
    from repro.service.journal import IdempotencyTable, ServiceDurability

    rng = np.random.default_rng(seed)
    durability = ServiceDurability(
        journal_dir, fsync="off", snapshot_every=snapshot_every
    )
    live = LiveSystemState(P=P, policy="wdeq")
    idempotency = IdempotencyTable(16)
    now = 0.0
    try:
        for _ in range(events):
            now += float(rng.uniform(0.005, 0.015))
            record = live.submit(
                float(rng.uniform(0.1, 0.5)),
                float(rng.uniform(0.5, 3.0)),
                float(rng.uniform(0.5, 2.0)),
                now=now,
            )
            durability.record_submit(record, None)
            durability.note_applied(live, idempotency, 0)
    finally:
        durability.close()


def run_recovery_benchmark(
    events: int = 10_000,
    P: float = 64.0,
    seed: int = 9,
    snapshot_every: int = 0,
    tag_suffix: str = "",
) -> "tuple[dict, dict]":
    """Cold-start recovery cost of an ``events``-record journal.

    ``snapshot_every=0`` measures the worst case (a full journal replay);
    the default server cadence (1000) measures what a crashed server
    actually pays: latest snapshot + a bounded journal suffix.
    """
    import tempfile

    from _common import best_of
    from repro.service.journal import ServiceDurability

    with tempfile.TemporaryDirectory() as journal_dir:
        _journaled_history(journal_dir, events, P, seed, snapshot_every)

        def recover_once() -> None:
            durability = ServiceDurability(
                journal_dir, fsync="off", snapshot_every=snapshot_every
            )
            try:
                result = durability.recover(P=P, policy="wdeq", atol=1e-10, kernel="auto")
            finally:
                durability.close()
            assert result.last_seq == events
            if snapshot_every == 0:
                assert result.recovered_events == events
            else:
                assert result.recovered_events <= snapshot_every

        # Recovery is seconds-scale, so one timed run after the warm-up is
        # plenty of resolution and keeps the bench job bounded.
        recovery_seconds = best_of(recover_once, 1)

    tag = f"n{events}{tag_suffix}"
    benchmarks = {f"service_recovery_{tag}": recovery_seconds}
    derived = {
        f"service_recovery_events_per_s_{tag}": events / max(recovery_seconds, 1e-12),
    }
    return benchmarks, derived


# --------------------------------------------------------------------- #
# pytest-benchmark variant
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def loaded_200():
    return _loaded_system(200, P=64.0, seed=21)


@pytest.mark.benchmark(group="service")
def test_incremental_query_200(benchmark, loaded_200):
    live, *_ = loaded_200
    task_ids = list(live.records)
    clock = {"now": live.now, "q": 0}

    def one_query():
        clock["now"] += 1e-6
        clock["q"] += 1
        return live.share_of(task_ids[clock["q"] % len(task_ids)], now=clock["now"])

    share = benchmark(one_query)
    assert share >= 0.0


@pytest.mark.benchmark(group="service")
def test_replay_query_200(benchmark, loaded_200):
    _, submit_times, volumes, weights, deltas = loaded_200
    benchmark(
        _replay_from_scratch, 64.0, submit_times, volumes, weights, deltas, 11.0
    )


def test_incremental_beats_replay_even_small():
    benchmarks, derived = run_incremental_benchmark(live_tasks=200, queries=20)
    assert derived["service_incremental_speedup_n200"] > 5.0


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    import argparse

    from _common import write_payload

    parser = argparse.ArgumentParser(
        description="Online scheduling service benchmark (script mode)"
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_service.json", help="output JSON path")
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args(argv)

    if args.smoke:
        live_tasks, queries = 1000, 20
        clients, tasks_per_client = 50, 10
    else:
        live_tasks, queries = 1000, 50
        clients, tasks_per_client = 200, 20
    config = {
        "live_tasks": live_tasks,
        "queries": queries,
        "clients": clients,
        "tasks_per_client": tasks_per_client,
        "seed": args.seed,
        "smoke": args.smoke,
    }
    benchmarks, derived = run_incremental_benchmark(
        live_tasks=live_tasks, queries=queries, seed=args.seed
    )
    tp_benchmarks, tp_derived = run_throughput_benchmark(clients, tasks_per_client)
    benchmarks.update(tp_benchmarks)
    derived.update(tp_derived)

    import tempfile

    with tempfile.TemporaryDirectory() as journal_dir:
        j_benchmarks, j_derived = run_throughput_benchmark(
            clients,
            tasks_per_client,
            journal_dir=journal_dir,
            tag_suffix="_journaled",
        )
    benchmarks.update(j_benchmarks)
    derived.update(j_derived)
    tag = f"c{clients}_t{tasks_per_client}"
    journal_ratio = derived[f"service_rps_{tag}_journaled"] / max(
        derived[f"service_rps_{tag}"], 1e-12
    )
    derived[f"service_journal_rps_ratio_{tag}"] = journal_ratio

    recovery_events = 10_000
    # What a crashed server pays under the default snapshot cadence
    # (hard-gated below) plus the snapshot-less worst case (gated only
    # against the committed baseline, machine-calibrated).
    r_benchmarks, r_derived = run_recovery_benchmark(
        events=recovery_events, snapshot_every=1000
    )
    f_benchmarks, f_derived = run_recovery_benchmark(
        events=recovery_events, snapshot_every=0, tag_suffix="_fullreplay"
    )
    benchmarks.update(r_benchmarks)
    benchmarks.update(f_benchmarks)
    derived.update(r_derived)
    derived.update(f_derived)

    write_payload("service", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.4f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.4g}")
    speedup = derived[f"service_incremental_speedup_n{live_tasks}"]
    if speedup < 5.0:
        print("ERROR: incremental queries are below the required 5x speedup over replay")
        return 1
    if derived[f"service_errors_c{clients}_t{tasks_per_client}"] > 0:
        print("ERROR: the load generator saw request errors")
        return 1
    if derived[f"service_errors_c{clients}_t{tasks_per_client}_journaled"] > 0:
        print("ERROR: the load generator saw request errors against the durable server")
        return 1
    if journal_ratio < 0.5:
        print(
            "ERROR: journaled throughput (fsync=interval) is "
            f"{journal_ratio:.2f}x the in-memory rate; the floor is 0.5x"
        )
        return 1
    recovery_seconds = benchmarks[f"service_recovery_n{recovery_events}"]
    if recovery_seconds >= 5.0:
        print(
            f"ERROR: recovering a {recovery_events}-event journal took "
            f"{recovery_seconds:.2f}s; the ceiling is 5s"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
