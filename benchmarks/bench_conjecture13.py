"""Benchmark E2 — greedy recurrence and reversal symmetry (Conjecture 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.greedy_homogeneous import homogeneous_greedy_value
from repro.analysis.conjectures import check_conjecture13
from repro.experiments import run_experiment


def test_homogeneous_greedy_value_n12(benchmark, homogeneous_deltas_n12):
    value = benchmark(homogeneous_greedy_value, homogeneous_deltas_n12)
    assert value >= 12.0


def test_reversal_symmetry_check_n12(benchmark, homogeneous_deltas_n12):
    check = benchmark.pedantic(
        check_conjecture13,
        kwargs={
            "deltas": homogeneous_deltas_n12,
            "max_orders": 200,
            "rng": np.random.default_rng(0),
        },
        iterations=1,
        rounds=3,
    )
    assert check.holds


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e2_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E2",),
        kwargs={"sizes": (3, 10), "count": 5, "max_orders": 50},
        iterations=1,
        rounds=1,
    )
    assert result.summary["symmetry holds on every instance"] is True
