"""Benchmark E4 — greedy optimality under the Theorem 11 hypothesis."""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import best_greedy_schedule
from repro.algorithms.optimal import optimal_schedule
from repro.experiments import run_experiment
from repro.experiments.exp_theorem11 import optimal_schedule_structure_ok


def test_greedy_equals_optimal_large_delta(benchmark, large_delta_instance_n5):
    def compare():
        greedy = best_greedy_schedule(large_delta_instance_n5).objective
        opt = optimal_schedule(large_delta_instance_n5)
        return greedy, opt

    greedy, opt = benchmark(compare)
    assert greedy == pytest.approx(opt.objective, rel=1e-6)


def test_structure_check_on_lp_optimum(benchmark, large_delta_instance_n5):
    opt = optimal_schedule(large_delta_instance_n5)
    ok = benchmark(optimal_schedule_structure_ok, opt.schedule)
    assert ok


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e4_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E4",),
        kwargs={"sizes": (2, 3, 4), "count": 3},
        iterations=1,
        rounds=1,
    )
    assert result.summary["greedy always optimal"] is True
