"""Shared helpers for the script mode of the benchmark modules.

Every ``bench_*.py`` module doubles as a pytest-benchmark suite (run with
``pytest benchmarks/ --benchmark-only``) and as a standalone script that
writes a machine-readable ``BENCH_<name>.json`` for the CI smoke job.  The
JSON payload carries a *calibration* measurement (a fixed NumPy workload) so
the baseline comparison can normalise away the raw speed difference between
the machine that committed the baseline and the CI runner.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable

import numpy as np

__all__ = ["best_of", "calibrate", "write_payload"]


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock time of ``fn`` in seconds.

    Convention: every measurement starts with one *untimed* warm-up call, so
    one-time costs — numba JIT compilation of the compiled kernel tier, lazy
    module imports, allocator warm-up — never land in the recorded best.
    Benchmarks that want cold-start numbers must time it themselves.
    """
    fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate(size: int = 400, repeats: int = 5) -> float:
    """Time a fixed NumPy workload, used to normalise cross-machine timings."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((size, size))

    def workload() -> None:
        b = a @ a
        np.linalg.norm(b)
        np.sort(b, axis=1)

    return best_of(workload, repeats)


def write_payload(
    name: str,
    config: dict,
    benchmarks: dict,
    derived: dict | None = None,
    output: str | None = None,
) -> dict:
    """Assemble the benchmark payload and write it to ``output`` (if given)."""
    payload = {
        "benchmark": name,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "config": config,
        "calibration_seconds": calibrate(),
        "benchmarks": benchmarks,
        "derived": derived or {},
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
    return payload
