"""Benchmark E3 — exhaustive optimal-order structure on Section V-B instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.orderings import optimal_order_structure
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def deltas_n5():
    return np.random.default_rng(10).uniform(0.5, 1.0, 5)


def test_optimal_order_structure_n5(benchmark, deltas_n5):
    structure = benchmark(optimal_order_structure, deltas_n5)
    assert structure.optimal_orders


def test_optimal_order_structure_n4(benchmark):
    deltas = np.random.default_rng(11).uniform(0.5, 1.0, 4)
    structure = benchmark(optimal_order_structure, deltas)
    assert structure.measured_pattern_optimal


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e3_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E3",),
        kwargs={"sizes": (2, 3, 4), "count": 3, "five_task_count": 2},
        iterations=1,
        rounds=1,
    )
    assert result.summary["5-task necessary condition always satisfied"] is True
