"""Benchmark — per-instance SciPy vs batched lockstep ordered-relaxation LPs.

Script mode (used by the CI benchmark-smoke job)::

    python benchmarks/bench_lp.py --output BENCH_lp.json

measures ``B`` scalar :func:`repro.lp.interface.solve_ordered_relaxation`
solves (HiGHS, Smith ordering) against one
:func:`repro.lp.batch.solve_ordered_relaxation_batch` lockstep solve over
the same padded batch (B=256 x n=5 by default, packing and assembly included
in the batched timing), and records the speedup and the maximum objective
disagreement in the JSON.  The acceptance bar for the batched LP path is a
>= 5x speedup over per-instance SciPy at B=256.

The default task count is small on purpose: the batched solver exists for
the *ordering* workloads (E1-E3 enumerate permutations of n <= 5; the
lockstep tableau grows as O(n^4) per problem), not to race HiGHS on a single
large LP — ``bench_scaling.py`` covers that regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import InstanceBatch
from repro.lp.batch import optimal, smith_orders_batch, solve_ordered_relaxation_batch
from repro.lp.interface import solve_ordered_relaxation
from repro.workloads.generators import uniform_instances


@pytest.fixture(scope="module")
def lp_batch_64x5():
    instances = list(uniform_instances(5, 64, rng=np.random.default_rng(13)))
    return instances, InstanceBatch.from_instances(instances)


def test_solve_ordered_relaxation_scipy_n5(benchmark, uniform_instance_n5):
    order = uniform_instance_n5.smith_order()
    result = benchmark(
        solve_ordered_relaxation, uniform_instance_n5, order, "scipy", False
    )
    assert result.objective > 0


@pytest.mark.benchmark(group="batch-kernels")
def test_solve_ordered_relaxation_batch_64x5(benchmark, lp_batch_64x5):
    _, batch = lp_batch_64x5
    solution = benchmark(solve_ordered_relaxation_batch, batch)
    assert solution.objectives.shape == (64,)


@pytest.mark.benchmark(group="batch-kernels")
def test_optimal_8x4(benchmark):
    instances = list(uniform_instances(4, 8, rng=np.random.default_rng(14)))
    batch = InstanceBatch.from_instances(instances)
    result = benchmark(optimal, batch)
    assert result.orderings_evaluated == 8 * 24


def test_lp_batch_matches_scalar(lp_batch_64x5):
    instances, batch = lp_batch_64x5
    solution = solve_ordered_relaxation_batch(batch)
    for b, inst in enumerate(instances[:8]):
        scalar = solve_ordered_relaxation(
            inst, inst.smith_order(), backend="scipy", build_schedule=False
        )
        assert solution.objectives[b] == pytest.approx(scalar.objective, rel=1e-6)


# --------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------- #


def run_lp_benchmark(
    batch_size: int = 256, task_count: int = 5, seed: int = 13, repeats: int = 3
) -> tuple[dict, dict]:
    """Per-instance SciPy vs one lockstep solve on the same ``B`` instances."""
    from _common import best_of

    instances = list(
        uniform_instances(task_count, batch_size, rng=np.random.default_rng(seed))
    )
    orders = [inst.smith_order() for inst in instances]
    serial_seconds = best_of(
        lambda: [
            solve_ordered_relaxation(inst, order, backend="scipy", build_schedule=False)
            for inst, order in zip(instances, orders)
        ],
        repeats,
    )
    # The batched timing includes packing, ordering and tensor assembly: the
    # real cost a caller starting from Instance objects pays.
    batch_seconds = best_of(
        lambda: solve_ordered_relaxation_batch(
            InstanceBatch.from_instances(instances), backend="batch"
        ),
        repeats,
    )
    batch = InstanceBatch.from_instances(instances)
    solution = solve_ordered_relaxation_batch(batch, smith_orders_batch(batch))
    scalar_objectives = np.array(
        [
            solve_ordered_relaxation(inst, order, backend="scipy", build_schedule=False).objective
            for inst, order in zip(instances, orders)
        ]
    )
    disagreement = float(
        np.max(
            np.abs(solution.objectives - scalar_objectives)
            / np.maximum(1.0, np.abs(scalar_objectives))
        )
    )
    # A light exact-OPT sweep keeps the branch-and-bound path
    # (repro.lp.optimal and its chunking) under the regression gate.
    enum_instances = instances[: max(4, batch_size // 32)]
    enum_batch = InstanceBatch.from_instances(
        list(uniform_instances(4, len(enum_instances), rng=np.random.default_rng(seed + 1)))
    )
    enum_seconds = best_of(lambda: optimal(enum_batch).objectives, 1)
    # Compiled pivot driver (and its float32 throughput mode).  Without
    # numba these time the documented fallback (identical NumPy pivot loop),
    # so the rows always exist for the baseline comparison; best_of's
    # untimed warm-up keeps JIT compilation out of the timing.
    from repro.batch.compiled import numba_available

    compiled_seconds = best_of(
        lambda: solve_ordered_relaxation_batch(
            InstanceBatch.from_instances(instances), backend="batch", kernel="compiled"
        ),
        repeats,
    )
    compiled_f32_seconds = best_of(
        lambda: solve_ordered_relaxation_batch(
            InstanceBatch.from_instances(instances),
            backend="batch",
            kernel="compiled",
            precision="float32",
        ),
        repeats,
    )
    compiled_solution = solve_ordered_relaxation_batch(
        batch, smith_orders_batch(batch), backend="batch", kernel="compiled"
    )
    compiled_disagreement = float(
        np.max(
            np.abs(compiled_solution.objectives - solution.objectives)
            / np.maximum(1.0, np.abs(solution.objectives))
        )
    )
    tag = f"B{batch_size}_n{task_count}"
    benchmarks = {
        f"lp_scipy_serial_{tag}": serial_seconds,
        f"lp_batch_{tag}": batch_seconds,
        f"lp_batch_compiled_{tag}": compiled_seconds,
        f"lp_batch_compiled_f32_{tag}": compiled_f32_seconds,
        f"lp_exact_enumeration_B{enum_batch.batch_size}_n4": enum_seconds,
    }
    derived = {
        f"lp_batch_speedup_{tag}": serial_seconds / max(batch_seconds, 1e-12),
        f"lp_compiled_speedup_{tag}": batch_seconds / max(compiled_seconds, 1e-12),
        "max_serial_vs_batch_disagreement": disagreement,
        "max_numpy_vs_compiled_disagreement": compiled_disagreement,
        "mean_simplex_pivots": float(solution.iterations.mean()),
        "numba_available": float(numba_available()),
    }
    return benchmarks, derived


def main(argv=None) -> int:
    import argparse

    from _common import write_payload

    parser = argparse.ArgumentParser(
        description="Batched ordered-relaxation LP benchmark (script mode)"
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--output", default="BENCH_lp.json", help="output JSON path")
    parser.add_argument("--instances", type=int, default=256, help="batch size B")
    parser.add_argument("--tasks", type=int, default=5, help="tasks per instance")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    batch_size = 64 if args.smoke else args.instances
    task_count = args.tasks
    config = {
        "batch_size": batch_size,
        "task_count": task_count,
        "seed": args.seed,
        "repeats": args.repeats,
        "smoke": args.smoke,
    }
    benchmarks, derived = run_lp_benchmark(
        batch_size=batch_size, task_count=task_count, seed=args.seed, repeats=args.repeats
    )
    write_payload("lp", config, benchmarks, derived, args.output)
    for name, seconds in sorted(benchmarks.items()):
        print(f"  {name}: {seconds * 1e3:.2f} ms")
    for name, value in sorted(derived.items()):
        print(f"  {name}: {value:.3g}")
    if derived["max_serial_vs_batch_disagreement"] > 1e-6:
        print("ERROR: serial and batched LP objectives disagree beyond tolerance")
        return 1
    if derived["max_numpy_vs_compiled_disagreement"] > 1e-9:
        print("ERROR: compiled and NumPy pivot drivers disagree beyond tolerance")
        return 1
    speedup_key = f"lp_batch_speedup_B{batch_size}_n{task_count}"
    if not args.smoke and batch_size >= 256 and derived[speedup_key] < 5.0:
        print("ERROR: batched LP solver is below the required 5x speedup at B>=256")
        return 1
    # The compiled pivot driver must buy >= 3x over the NumPy loop — gated
    # only where it actually runs (numba installed, full scale).
    compiled_key = f"lp_compiled_speedup_B{batch_size}_n{task_count}"
    if (
        not args.smoke
        and batch_size >= 256
        and derived["numba_available"]
        and derived[compiled_key] < 3.0
    ):
        print("ERROR: compiled pivot driver is below the required 3x speedup at B>=256")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
