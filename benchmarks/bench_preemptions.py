"""Benchmark E6 — Water-Filling normalisation, integer conversion, preemptions."""

from __future__ import annotations

import pytest

from repro.algorithms.preemption import assign_processors, integer_allocation_profile
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.analysis.preemptions import preemption_report
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def wf_schedule_n50(cluster_instance_n50):
    completions = wdeq_schedule(cluster_instance_n50).completion_times_by_task()
    return water_filling_schedule(cluster_instance_n50, completions)


def test_fractional_change_count_n50(benchmark, wf_schedule_n50):
    changes = benchmark(wf_schedule_n50.allocation_change_count)
    assert changes <= 50  # Theorem 9


def test_integer_profile_n50(benchmark, wf_schedule_n50):
    profile = benchmark(integer_allocation_profile, wf_schedule_n50)
    assert profile.num_processors == 64


def test_sticky_assignment_n50(benchmark, wf_schedule_n50):
    assignment = benchmark(assign_processors, wf_schedule_n50)
    assert assignment.num_processors == 64


def test_preemption_report_n50(benchmark, cluster_instance_n50):
    completions = wdeq_schedule(cluster_instance_n50).completion_times_by_task()
    report = benchmark(preemption_report, cluster_instance_n50, completions)
    assert report.within_bounds


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e6_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E6",),
        kwargs={"sizes": (5, 20), "count": 2},
        iterations=1,
        rounds=1,
    )
    key = "fractional change bound (Theorem 9) respected on every instance"
    assert result.summary[key] is True
