"""Benchmark E1 — best-greedy vs brute-force optimal (Conjecture 12).

The paper's experiment compares, on random instances of 2-5 tasks, the best
greedy schedule with the exact optimum.  These benchmarks time the two sides
of that comparison (the exhaustive greedy search and the ordering-enumeration
LP optimum) and the full miniature experiment, and assert the conjecture on
the benchmarked instances.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import best_greedy_schedule
from repro.algorithms.optimal import optimal_value
from repro.experiments import run_experiment


def test_best_greedy_search_n5(benchmark, uniform_instance_n5):
    result = benchmark(best_greedy_schedule, uniform_instance_n5)
    assert result.exhaustive
    assert result.evaluated == 120


def test_brute_force_optimal_n4(benchmark, uniform_instance_n4):
    value = benchmark(optimal_value, uniform_instance_n4)
    assert value > 0


def test_conjecture12_gap_n4(benchmark, uniform_instance_n4):
    def gap():
        greedy = best_greedy_schedule(uniform_instance_n4).objective
        return greedy - optimal_value(uniform_instance_n4)

    measured = benchmark(gap)
    assert abs(measured) <= 1e-6


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e1_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E1",),
        kwargs={"sizes": (2, 3), "count": 3, "families": ("uniform",)},
        iterations=1,
        rounds=1,
    )
    assert result.summary["conjecture holds on every instance"] is True
