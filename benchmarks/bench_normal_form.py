"""Benchmark E9 — normal-form round trips (Theorems 3 and 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.core.conversion import column_to_processor_assignment, continuous_to_column
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def wdeq_n50(cluster_instance_n50):
    return wdeq_schedule(cluster_instance_n50)


def test_water_filling_normalisation_n50(benchmark, cluster_instance_n50, wdeq_n50):
    targets = wdeq_n50.completion_times_by_task()
    sched = benchmark(water_filling_schedule, cluster_instance_n50, targets)
    np.testing.assert_allclose(sched.completion_times_by_task(), targets, rtol=1e-7)


def test_theorem3_stacking_n50(benchmark, wdeq_n50):
    assignment = benchmark(column_to_processor_assignment, wdeq_n50)
    assert assignment.num_processors == 64


def test_theorem3_column_averaging_n50(benchmark, wdeq_n50):
    continuous = wdeq_n50.to_continuous()
    column = benchmark(continuous_to_column, continuous)
    assert column.n == 50


@pytest.mark.benchmark(group="experiment-runs")
def test_experiment_e9_quick(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("E9",),
        kwargs={"small_sizes": (3,), "large_sizes": (10,), "count": 2},
        iterations=1,
        rounds=1,
    )
    assert result.summary["all normalised schedules valid"] is True
