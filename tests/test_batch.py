"""Tests for the vectorized batch subsystem (repro.batch).

The property tests generate random padded batches — mixed sizes, including
degenerate one-task instances — and assert that the vectorized kernels agree
with the scalar reference implementations they replace.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.water_filling import water_filling_levels
from repro.algorithms.wdeq import wdeq_schedule
from repro.analysis.ratios import wdeq_ratio
from repro.batch.cache import ResultCache, cache_key
from repro.batch.kernels import (
    PaddedBatch,
    combined_lower_bound_batch,
    water_filling_batch,
    wdeq_batch,
    wdeq_ratio_batch,
    wdeq_weighted_completion_batch,
)
from repro.batch.runner import BatchRunner
from repro.core.bounds import combined_lower_bound, time_leq, times_close
from repro.core.exceptions import InfeasibleScheduleError, InvalidInstanceError
from repro.core.instance import Instance, Task
from repro.experiments.base import map_instances
from repro.workloads.generators import cluster_instances, uniform_instances

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def instances(draw, min_tasks: int = 1, max_tasks: int = 6):
    """One random instance with well-conditioned parameters."""
    n = draw(st.integers(min_tasks, max_tasks))
    P = draw(st.floats(0.5, 4.0, **finite))
    tasks = []
    for _ in range(n):
        volume = draw(st.floats(0.05, 10.0, **finite))
        weight = draw(st.floats(0.05, 10.0, **finite))
        delta = draw(st.floats(0.05, 1.0, **finite)) * P
        tasks.append(Task(volume=volume, weight=weight, delta=delta))
    return Instance(P=P, tasks=tasks)


@st.composite
def instance_batches(draw, max_batch: int = 6):
    """A batch of random instances of *mixed* sizes (padding is exercised)."""
    return draw(st.lists(instances(), min_size=1, max_size=max_batch))


# --------------------------------------------------------------------- #
# PaddedBatch
# --------------------------------------------------------------------- #


class TestPaddedBatch:
    def test_shapes_and_mask(self):
        insts = [
            Instance.from_arrays(P=2.0, volumes=[1.0, 2.0, 3.0]),
            Instance.from_arrays(P=1.0, volumes=[1.0]),
        ]
        batch = PaddedBatch.from_instances(insts)
        assert batch.batch_size == 2
        assert batch.n_max == 3
        assert list(batch.counts) == [3, 1]
        assert batch.mask[1, 0] and not batch.mask[1, 1]
        # Padding slots are inert: zero volume, zero weight, positive delta.
        assert batch.volumes[1, 1] == 0.0
        assert batch.weights[1, 2] == 0.0
        assert batch.deltas[1, 1] > 0.0

    def test_roundtrip_instance(self):
        inst = next(uniform_instances(4, 1, rng=0))
        batch = PaddedBatch.from_instances([inst, next(uniform_instances(2, 1, rng=1))])
        back = batch.instance(0)
        np.testing.assert_allclose(back.volumes, inst.volumes)
        np.testing.assert_allclose(back.deltas, inst.deltas)
        assert back.P == inst.P

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            PaddedBatch.from_instances([])


# --------------------------------------------------------------------- #
# WDEQ kernel
# --------------------------------------------------------------------- #


class TestWdeqBatch:
    @settings(max_examples=30, deadline=None)
    @given(instance_batches())
    def test_agrees_with_scalar(self, insts):
        batch = PaddedBatch.from_instances(insts)
        completions = wdeq_batch(batch)
        assert completions.shape == (batch.batch_size, batch.n_max)
        for b, inst in enumerate(insts):
            expected = wdeq_schedule(inst).completion_times_by_task()
            np.testing.assert_allclose(
                completions[b, : inst.n], expected, rtol=1e-7, atol=1e-9
            )
            # Padding slots never accumulate completion times.
            assert np.all(completions[b, inst.n :] == 0.0)

    def test_single_task_instance(self):
        inst = Instance(P=2.0, tasks=[Task(volume=3.0, weight=1.0, delta=0.5)])
        batch = PaddedBatch.from_instances([inst])
        completions = wdeq_batch(batch)
        # One task capped at delta=0.5: completes at V / delta = 6.
        np.testing.assert_allclose(completions[0, 0], 6.0)

    def test_weighted_objective_matches(self):
        insts = list(cluster_instances(12, 5, rng=np.random.default_rng(2)))
        batch = PaddedBatch.from_instances(insts)
        values = wdeq_weighted_completion_batch(batch)
        expected = [wdeq_schedule(inst).weighted_completion_time() for inst in insts]
        np.testing.assert_allclose(values, expected, rtol=1e-7)

    def test_nonpositive_weights_rejected(self):
        inst = Instance(P=1.0, tasks=[Task(volume=1.0, weight=0.0, delta=0.5)])
        with pytest.raises(InvalidInstanceError):
            wdeq_batch(PaddedBatch.from_instances([inst]))


# --------------------------------------------------------------------- #
# Water-Filling kernel
# --------------------------------------------------------------------- #


class TestWaterFillingBatch:
    @settings(max_examples=20, deadline=None)
    @given(instance_batches(max_batch=4))
    def test_agrees_with_scalar_on_wdeq_targets(self, insts):
        batch = PaddedBatch.from_instances(insts)
        completions = wdeq_batch(batch)
        result = water_filling_batch(batch, completions)
        for b, inst in enumerate(insts):
            sched, levels = water_filling_levels(inst, completions[b, : inst.n])
            np.testing.assert_allclose(
                result.rates[b, : inst.n, : inst.n], sched.rates, atol=1e-8
            )
            np.testing.assert_allclose(
                result.levels[b, : inst.n], levels, rtol=1e-7, atol=1e-9
            )
            assert list(result.order[b, : inst.n]) == list(sched.order)

    @settings(max_examples=20, deadline=None)
    @given(instance_batches(max_batch=4))
    def test_volume_conservation_and_caps(self, insts):
        batch = PaddedBatch.from_instances(insts)
        completions = wdeq_batch(batch)
        result = water_filling_batch(batch, completions)
        lengths = np.diff(result.sorted_completion_times, axis=1, prepend=0.0)
        for b, inst in enumerate(insts):
            poured = result.rates[b] @ lengths[b]
            np.testing.assert_allclose(poured[: inst.n], inst.volumes, rtol=1e-6, atol=1e-9)
            # No task exceeds its cap in any positive-length column.
            positive = lengths[b] > 1e-9
            rates = result.rates[b, : inst.n][:, positive]
            assert np.all(rates <= inst.deltas[:, None] + 1e-7)

    def test_infeasible_targets_raise(self):
        inst = Instance(P=1.0, tasks=[Task(volume=5.0, weight=1.0, delta=1.0)])
        batch = PaddedBatch.from_instances([inst])
        with pytest.raises(InfeasibleScheduleError):
            water_filling_batch(batch, np.array([[1.0]]))


# --------------------------------------------------------------------- #
# Bounds and ratios
# --------------------------------------------------------------------- #


class TestBatchBounds:
    @settings(max_examples=30, deadline=None)
    @given(instance_batches())
    def test_combined_lower_bound_agrees(self, insts):
        batch = PaddedBatch.from_instances(insts)
        bounds = combined_lower_bound_batch(batch)
        expected = [combined_lower_bound(inst) for inst in insts]
        np.testing.assert_allclose(bounds, expected, rtol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(instance_batches(max_batch=4))
    def test_wdeq_ratio_agrees_and_below_two(self, insts):
        batch = PaddedBatch.from_instances(insts)
        ratios = wdeq_ratio_batch(batch)
        expected = [wdeq_ratio(inst, exact=False) for inst in insts]
        np.testing.assert_allclose(ratios, expected, rtol=1e-7)
        # Theorem 4: WDEQ is a 2-approximation, and the reference is a lower
        # bound, so the measured ratio can only be *smaller*.
        assert np.all(ratios <= 2.0 + 1e-6)


# --------------------------------------------------------------------- #
# BatchRunner
# --------------------------------------------------------------------- #


def _task_count(instance: Instance) -> int:
    """Module-level so it pickles into worker processes."""
    return instance.n


class TestBatchRunner:
    def test_map_serial_matches_loop(self):
        insts = list(uniform_instances(3, 6, rng=0))
        runner = BatchRunner(workers=1)
        assert runner.map(_task_count, insts) == [3] * 6

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_map_parallel_matches_serial(self, executor):
        insts = list(cluster_instances(6, 8, rng=np.random.default_rng(1)))
        serial = [combined_lower_bound(inst) for inst in insts]
        runner = BatchRunner(workers=2, executor=executor)
        np.testing.assert_allclose(runner.map(combined_lower_bound, insts), serial)

    def test_run_suite_deterministic_across_worker_counts(self):
        kwargs = dict(n=4, count=10, seed=42)
        serial = BatchRunner(workers=1, batch_size=4).run_suite(
            uniform_instances, combined_lower_bound, **kwargs
        )
        parallel = BatchRunner(workers=2, batch_size=4, executor="thread").run_suite(
            uniform_instances, combined_lower_bound, **kwargs
        )
        assert len(serial) == 10
        np.testing.assert_allclose(serial, parallel)

    def test_plan_shards_sizes(self):
        runner = BatchRunner(workers=2, batch_size=8)
        plan = runner.plan_shards(20, seed=0)
        assert [size for size, _ in plan] == [8, 8, 4]
        spawn_keys = [tuple(child.spawn_key) for _, child in plan]
        assert len(set(spawn_keys)) == 3

    def test_run_suite_uses_cache(self):
        cache = ResultCache()
        runner = BatchRunner(workers=1, batch_size=8, cache=cache)
        first = runner.run_suite(uniform_instances, combined_lower_bound, 3, 6, seed=0)
        second = runner.run_suite(uniform_instances, combined_lower_bound, 3, 6, seed=0)
        assert first is second
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_run_suite_cache_distinguishes_functions(self):
        cache = ResultCache()
        runner = BatchRunner(workers=1, batch_size=8, cache=cache)
        bounds = runner.run_suite(uniform_instances, combined_lower_bound, 3, 6, seed=0)
        counts = runner.run_suite(uniform_instances, _task_count, 3, 6, seed=0)
        # Same workload, different mapped function: must NOT collide.
        assert counts == [3] * 6
        assert bounds != counts
        assert cache.stats["misses"] == 2 and cache.stats["hits"] == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(executor="fiber")
        with pytest.raises(ValueError):
            BatchRunner(batch_size=0)

    def test_pool_reused_across_map_calls_and_closed(self):
        insts = list(uniform_instances(3, 4, rng=0))
        with BatchRunner(workers=2, executor="thread") as runner:
            runner.map(_task_count, insts)
            pool = runner._pool
            runner.map(_task_count, insts)
            assert runner._pool is pool  # same pool, not one per call
        assert runner._pool is None  # context exit shuts it down


# --------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_get_put_and_stats(self):
        cache = ResultCache()
        key = cache_key("uniform", 0, {"n": 3})
        assert cache.get(key) is None
        cache.put(key, [1.0, 2.0])
        assert cache.get(key) == [1.0, 2.0]
        assert cache.stats == {"hits": 1, "misses": 1, "size": 1}

    def test_get_or_compute_only_computes_once(self):
        cache = ResultCache()
        calls = []
        key = cache_key("gen", 1, {})
        for _ in range(3):
            cache.get_or_compute(key, lambda: calls.append(1) or "value")
        assert cache.get(key) == "value"
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the eviction victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put(cache_key("gen", 0, {}), {"gaps": [0.0, 1e-9]})
        cache.put("unserialisable", object())  # silently skipped on save
        cache.save()
        reloaded = ResultCache(path=path)
        assert reloaded.get(cache_key("gen", 0, {})) == {"gaps": [0.0, 1e-9]}
        assert "unserialisable" not in reloaded

    def test_cache_key_canonicalisation(self):
        a = cache_key(uniform_instances, 0, {"b": 2, "a": 1})
        b = cache_key(uniform_instances, 0, {"a": 1, "b": 2})
        assert a == b
        assert cache_key("uniform", 0, {"a": 1}) != cache_key("uniform", 1, {"a": 1})


# --------------------------------------------------------------------- #
# Experiment integration
# --------------------------------------------------------------------- #


class TestExperimentIntegration:
    def test_map_instances_serial_and_runner(self):
        insts = list(uniform_instances(2, 4, rng=0))
        assert map_instances(_task_count, insts) == [2] * 4
        runner = BatchRunner(workers=2, executor="thread")
        assert map_instances(_task_count, insts, runner) == [2] * 4

    def test_legacy_execution_kwargs_raise_with_ctx_hint(self):
        from repro.experiments.registry import run_experiment

        for kwargs in ({"use_batch": True}, {"seed": 3}, {"runner": None, "cache": None}):
            with pytest.raises(TypeError, match="ExecutionContext"):
                run_experiment("E5", **kwargs)
        # The error names the ctx= replacement for the offending keyword.
        with pytest.raises(TypeError, match="backend='vectorized'"):
            run_experiment("E5", use_batch=True)

    def test_run_experiment_rejects_misspelled_parameter(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(TypeError):
            run_experiment("E5", samll_count=5)

    def test_cache_key_stable_for_partials(self):
        import functools

        from repro.analysis.conjectures import check_conjecture12

        a = cache_key(functools.partial(check_conjecture12, tolerance=1e-6), 0, {})
        b = cache_key(functools.partial(check_conjecture12, tolerance=1e-6), 0, {})
        c = cache_key(functools.partial(check_conjecture12, tolerance=1e-3), 0, {})
        assert a == b
        assert a != c

    def test_e5_batch_matches_serial_rows(self):
        from repro.exec import ExecutionContext
        from repro.experiments.registry import run_experiment

        kwargs = dict(small_sizes=(2,), small_count=2, large_sizes=(8,), large_count=3)
        serial = run_experiment("E5", **kwargs)
        batched = run_experiment("E5", ctx=ExecutionContext(backend="vectorized"), **kwargs)
        assert serial.rows == batched.rows


# --------------------------------------------------------------------- #
# Tolerance helpers (core.bounds)
# --------------------------------------------------------------------- #


class TestToleranceHelpers:
    def test_times_close_scalar_and_array(self):
        assert times_close(1.0, 1.0 + 1e-12)
        assert not times_close(1.0, 1.1)
        np.testing.assert_array_equal(
            times_close(np.array([1.0, 2.0]), np.array([1.0, 2.5])), [True, False]
        )

    def test_time_leq_tolerates_jitter(self):
        assert time_leq(1.0 + 1e-12, 1.0)
        assert not time_leq(1.1, 1.0)
        assert time_leq(0.5, 1.0)
        # Explicit absolute slack, as the validators use it.
        assert time_leq(1.05, 1.0, rtol=0.0, atol=0.1)
