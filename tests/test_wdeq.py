"""Tests for WDEQ and the related online baselines (Section III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.bounds import combined_lower_bound
from repro.core.exceptions import InvalidInstanceError
from repro.core.validation import validate_column_schedule
from repro.algorithms.optimal import optimal_value
from repro.algorithms.wdeq import (
    deq_schedule,
    wdeq_allocation,
    wdeq_schedule,
    weighted_round_robin_schedule,
)
from tests.conftest import random_instance


class TestWdeqAllocation:
    def test_proportional_when_no_cap_binds(self):
        alloc = wdeq_allocation(P=4, weights=[1, 3], deltas=[4, 4])
        np.testing.assert_allclose(alloc, [1.0, 3.0])

    def test_cap_binds_and_excess_redistributed(self):
        # Proportional shares would be [2, 2]; task 0 is capped at 0.5 and the
        # surplus 1.5 goes to task 1.
        alloc = wdeq_allocation(P=4, weights=[1, 1], deltas=[0.5, 4])
        np.testing.assert_allclose(alloc, [0.5, 3.5])

    def test_cascading_caps(self):
        alloc = wdeq_allocation(P=6, weights=[1, 1, 1], deltas=[1, 2, 6])
        np.testing.assert_allclose(alloc, [1.0, 2.0, 3.0])

    def test_total_never_exceeds_platform(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 8))
            weights = rng.uniform(0.1, 2.0, n)
            deltas = rng.uniform(0.1, 3.0, n)
            alloc = wdeq_allocation(P=2.5, weights=weights, deltas=deltas)
            assert alloc.sum() <= 2.5 + 1e-9
            assert np.all(alloc <= deltas + 1e-9)
            assert np.all(alloc >= 0)

    def test_all_capped_leaves_capacity_idle(self):
        alloc = wdeq_allocation(P=10, weights=[1, 1], deltas=[1, 2])
        np.testing.assert_allclose(alloc, [1.0, 2.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            wdeq_allocation(P=1, weights=[0.0, 1.0], deltas=[1.0, 1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidInstanceError):
            wdeq_allocation(P=1, weights=[1.0], deltas=[1.0, 1.0])

    def test_empty(self):
        assert wdeq_allocation(P=1, weights=[], deltas=[]).size == 0


class TestWdeqSchedule:
    def test_single_task(self):
        inst = Instance(P=4, tasks=[Task(volume=6, weight=1, delta=3)])
        sched = wdeq_schedule(inst)
        assert sched.completion_times_by_task()[0] == pytest.approx(2.0)

    def test_produces_valid_schedules(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=6, P=3.0)
            sched = wdeq_schedule(inst)
            validate_column_schedule(sched)

    def test_equal_tasks_finish_together(self):
        inst = Instance(P=2, tasks=[Task(1, 1, 2), Task(1, 1, 2)])
        sched = wdeq_schedule(inst)
        np.testing.assert_allclose(sched.completion_times_by_task(), [1.0, 1.0])

    def test_heavier_task_finishes_first(self):
        inst = Instance(P=2, tasks=[Task(1, 3, 2), Task(1, 1, 2)])
        sched = wdeq_schedule(inst)
        completions = sched.completion_times_by_task()
        assert completions[0] < completions[1]

    def test_weights_must_be_positive(self):
        inst = Instance(P=2, tasks=[Task(1, 0.0, 1), Task(1, 1, 1)])
        with pytest.raises(InvalidInstanceError):
            wdeq_schedule(inst)

    def test_empty_instance(self):
        sched = wdeq_schedule(Instance(P=2, tasks=[]))
        assert sched.n == 0

    def test_two_approximation_against_exact_optimum(self, rng):
        """Theorem 4 on random instances with the exact optimum as reference."""
        for _ in range(15):
            n = int(rng.integers(2, 6))
            inst = random_instance(rng, n=n, P=1.0)
            ratio = wdeq_schedule(inst).weighted_completion_time() / optimal_value(inst)
            assert ratio <= 2.0 + 1e-6

    def test_two_approximation_against_lower_bound_larger_instances(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=20, P=8.0)
            ratio = wdeq_schedule(inst).weighted_completion_time() / combined_lower_bound(inst)
            assert ratio <= 2.0 + 1e-6


class TestBaselines:
    def test_deq_ignores_weights(self):
        weighted = Instance(P=2, tasks=[Task(1, 5, 2), Task(1, 1, 2)])
        sched = deq_schedule(weighted)
        # With equal shares the two identical-volume tasks finish together.
        completions = sched.completion_times_by_task()
        assert completions[0] == pytest.approx(completions[1])

    def test_deq_reports_weighted_objective_of_original_instance(self):
        weighted = Instance(P=2, tasks=[Task(1, 5, 2), Task(1, 1, 2)])
        sched = deq_schedule(weighted)
        assert sched.weighted_completion_time() == pytest.approx(6 * 1.0)

    def test_wdeq_never_worse_than_deq_on_skewed_weights(self):
        inst = Instance(
            P=2,
            tasks=[Task(4, 10, 2), Task(4, 0.1, 2), Task(4, 0.1, 2)],
        )
        assert (
            wdeq_schedule(inst).weighted_completion_time()
            <= deq_schedule(inst).weighted_completion_time() + 1e-9
        )

    def test_wrr_relaxes_caps(self):
        inst = Instance(P=4, tasks=[Task(4, 1, 1), Task(4, 1, 1)])
        wrr = weighted_round_robin_schedule(inst)
        # Without caps both tasks finish at 2 (sharing 4 processors); with the
        # caps they would need 4 time units.
        assert wrr.makespan() == pytest.approx(2.0)
        assert wdeq_schedule(inst).makespan() == pytest.approx(4.0)

    def test_wrr_empty(self):
        assert weighted_round_robin_schedule(Instance(P=1, tasks=[])).n == 0
