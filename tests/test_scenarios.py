"""Tests for the scenario/sweep subsystem (``repro.scenarios``).

Covers the full round trip the acceptance criteria name: TOML →
:class:`ScenarioSpec` → grid expansion → cell execution → results store →
report table, the Hypothesis property that grid expansion is lossless and
deterministic, and the backend-independence contract — the committed TOML
specs produce tolerance-identical summary tables on the serial and
vectorized backends.
"""

from __future__ import annotations

import itertools
import json
import math
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ExecutionContext
from repro.experiments.report import render_sweep_report
from repro.scenarios import (
    SCENARIOS,
    ResultsStore,
    ScenarioSpec,
    SweepRunner,
    expand_grid,
    get_scenario,
    load_records,
    summary_table,
)
from repro.scenarios.families import build_cell_workload, draw_release_times, load_trace
from repro.scenarios.grid import split_cell_params

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "scenarios"


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="tiny",
        generator="uniform_instances",
        params={"P": 1.0},
        grid={"n": (3, 4)},
        count=3,
        policies=("WDEQ", "DEQ"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpec:
    def test_dict_round_trip_is_lossless(self):
        spec = get_scenario("bursty-poisson")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_toml_round_trip(self, tmp_path):
        source = ScenarioSpec.from_toml(SCENARIO_DIR / "poisson_bursts.toml")
        assert source.name == "poisson-bursts"
        assert source.arrivals["process"] == "bursty-poisson"
        assert source.grid["arrivals.rate"] == (0.5, 2.0)
        # to_dict -> from_dict reproduces the TOML-loaded spec exactly.
        assert ScenarioSpec.from_dict(source.to_dict()) == source

    def test_toml_resolves_trace_relative_to_file(self):
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / "trace_replay.toml")
        assert pathlib.Path(spec.params["trace"]).is_file()

    def test_missing_scenario_table(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[not_scenario]\nname = "x"\n')
        with pytest.raises(ValueError, match="scenario"):
            ScenarioSpec.from_toml(path)

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(pipeline="nope"), "pipeline"),
            (dict(count=0), "count"),
            (dict(grid={"n": ()}), "grid axis"),
            (dict(policies=("NotAPolicy",)), "policies"),
            (dict(metrics=("nope",)), "metrics"),
            (dict(arrivals={"process": "weird"}), "arrival"),
            (dict(weights={"dist": "weird"}), "weight"),
        ],
    )
    def test_validation_rejects(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            tiny_spec(**overrides)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "generator": "g", "typo": 1})

    def test_with_overrides_merges_grid_and_params(self):
        spec = tiny_spec().with_overrides(grid={"n": (9,)}, params={"P": 2.0}, count=5)
        assert spec.grid["n"] == (9,)
        assert spec.params["P"] == 2.0
        assert spec.count == 5

    def test_registry_lookup(self):
        assert get_scenario("e5-policy-comparison").pipeline == "policies"
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")
        assert {"e5-policy-comparison", "e7-solver-scaling", "e8-bandwidth-strategies"} <= set(
            SCENARIOS
        )

    def test_pipeline_metrics_are_pipeline_specific(self):
        # The bandwidth / solver-timing pipelines accept their own metrics...
        spec = ScenarioSpec(
            name="bw", generator="bandwidth_scenario_instances", pipeline="bandwidth",
            grid={"n": (3,)}, metrics=("mean_throughput",),
        )
        assert spec.metrics == ("mean_throughput",)
        ScenarioSpec(
            name="st", generator="cluster_instances", pipeline="solver-timing",
            grid={"n": (3,)}, metrics=("best_ms",),
        )
        # ...and reject metrics belonging to a different pipeline.
        with pytest.raises(ValueError, match="pipeline 'bandwidth'"):
            tiny_spec(name="bad", pipeline="bandwidth", policies=(), metrics=("mean_ratio",))
        with pytest.raises(ValueError, match="policies only apply"):
            tiny_spec(name="bad", pipeline="bandwidth", metrics=())

    def test_registry_trace_replay_works_from_any_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec = get_scenario("trace-replay")
        with ExecutionContext(seed=0, backend="vectorized") as ctx:
            result = SweepRunner(spec, ctx).run()
        assert len(result.records) == 4


# A strategy for small grids: 1-3 axes, each with 1-4 distinct values.
grid_values = st.lists(
    st.one_of(st.integers(-100, 100), st.floats(0.1, 10.0, allow_nan=False), st.text("ab", min_size=1, max_size=3)),
    min_size=1,
    max_size=4,
    unique=True,
)
grids = st.dictionaries(
    st.text("abcxyz", min_size=1, max_size=5), grid_values, min_size=1, max_size=3
)


class TestGridExpansion:
    @settings(max_examples=50, deadline=None)
    @given(grid=grids, base_seed=st.integers(0, 1000))
    def test_expansion_is_lossless_and_deterministic(self, grid, base_seed):
        spec = ScenarioSpec(name="g", generator="uniform_instances", grid=grid)
        cells = expand_grid(spec, base_seed=base_seed)
        # Lossless: the cells are exactly the cross product, each combination
        # appearing exactly once, values read back verbatim.
        expected = [
            dict(zip(sorted(grid), combo))
            for combo in itertools.product(*(grid[k] for k in sorted(grid)))
        ]
        assert [dict(c.params) for c in cells] == expected
        # Deterministic: a second expansion is identical, including seeds.
        again = expand_grid(spec, base_seed=base_seed)
        assert cells == again
        # Seeds are distinct and derived from base_seed + index.
        assert [c.seed for c in cells] == [base_seed + i for i in range(len(cells))]

    def test_split_routes_axis_prefixes(self):
        spec = tiny_spec(
            grid={"n": (4,), "arrivals.rate": (2.0,), "weights.alpha": (1.5,), "count": (7,)},
            arrivals={"process": "poisson", "rate": 1.0},
            weights={"dist": "pareto"},
        )
        cell = expand_grid(spec)[0]
        gen_kwargs, count, arrival, weight = split_cell_params(spec, cell)
        assert gen_kwargs == {"P": 1.0, "n": 4}
        assert count == 7
        assert arrival == {"process": "poisson", "rate": 2.0}
        assert weight == {"dist": "pareto", "alpha": 1.5}


class TestFamilies:
    def test_poisson_releases_are_increasing(self):
        rng = np.random.default_rng(0)
        releases = draw_release_times({"process": "poisson", "rate": 2.0}, 4, 6, rng)
        assert releases.shape == (4, 6)
        assert np.all(np.diff(releases, axis=1) > 0)

    def test_bursty_releases_group_tasks(self):
        rng = np.random.default_rng(0)
        releases = draw_release_times(
            {"process": "bursty-poisson", "rate": 1.0, "burst_size": 3}, 2, 6, rng
        )
        # Without spread, tasks of one burst share their release time.
        assert np.allclose(releases[:, 0], releases[:, 2])
        assert np.all(releases[:, 3] > releases[:, 2])

    def test_none_process_returns_none(self):
        assert draw_release_times({"process": "none"}, 2, 3, np.random.default_rng(0)) is None

    def test_heavy_tailed_generator_weights(self):
        instances, releases = build_cell_workload(
            "heavy_tailed_instances", {"n": 6, "P": 16.0, "alpha": 1.5}, 4, {}, {}, seed=0
        )
        assert releases is None
        assert len(instances) == 4
        assert all(w >= 1.0 for inst in instances for w in inst.weights)

    def test_weight_redistribution_applies(self):
        plain, _ = build_cell_workload("uniform_instances", {"n": 5}, 3, {}, {}, seed=1)
        pareto, _ = build_cell_workload(
            "uniform_instances", {"n": 5}, 3, {}, {"dist": "pareto", "alpha": 1.2}, seed=1
        )
        # Same volumes/caps (same stream), different weights.
        assert np.allclose(plain[0].volumes, pareto[0].volumes)
        assert not np.allclose(plain[0].weights, pareto[0].weights)
        assert all(w >= 1.0 for w in pareto[0].weights)

    def test_trace_round_trip(self):
        instances, releases = load_trace(SCENARIO_DIR / "traces" / "sample_trace.csv", P=8.0)
        assert len(instances) == 8
        assert releases is not None and releases.shape[0] == 8
        # Releases on padding slots are zero (padded-batch convention).
        for b, inst in enumerate(instances):
            n = inst.n
            assert np.all(releases[b, n:] == 0.0)

    def test_unknown_generator_raises(self):
        from repro.core.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError, match="unknown workload generator"):
            build_cell_workload("no_such_generator", {}, 2, {}, {}, seed=0)


def _table_close(a, b, rtol=1e-9, atol=1e-9):
    """Tolerance comparison of two summary tables (numeric cells as floats)."""
    headers_a, rows_a = a
    headers_b, rows_b = b
    assert headers_a == headers_b
    assert len(rows_a) == len(rows_b)
    for row_a, row_b in zip(rows_a, rows_b):
        assert len(row_a) == len(row_b)
        for cell_a, cell_b in zip(row_a, row_b):
            try:
                fa, fb = float(cell_a), float(cell_b)
            except (TypeError, ValueError):
                assert cell_a == cell_b
                continue
            assert math.isclose(fa, fb, rel_tol=rtol, abs_tol=atol), (cell_a, cell_b)


class TestBackendIndependence:
    @pytest.mark.parametrize(
        "toml_name",
        ["poisson_bursts.toml", "trace_replay.toml", "heavy_tailed.toml", "trace_stream.toml"],
    )
    def test_committed_spec_identical_on_serial_and_vectorized(self, toml_name):
        """The acceptance bar: every committed TOML spec, full grid, end to
        end on both backends, with tolerance-compared summary tables."""
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / toml_name)
        with ExecutionContext(seed=3) as ctx:
            serial = SweepRunner(spec, ctx).run()
        with ExecutionContext(seed=3, backend="vectorized") as ctx:
            vectorized = SweepRunner(spec, ctx).run()
        _table_close(
            (serial.headers, serial.rows), (vectorized.headers, vectorized.rows), rtol=1e-6
        )

    def test_process_pool_matches_serial(self):
        spec = tiny_spec()
        with ExecutionContext(seed=5) as ctx:
            serial = SweepRunner(spec, ctx).run()
        with ExecutionContext(seed=5, workers=2) as ctx:
            pooled = SweepRunner(spec, ctx).run()
        assert [r["metrics"] for r in serial.records] == [r["metrics"] for r in pooled.records]

    def test_cached_rerun_reuses_results(self):
        from repro.batch.cache import ResultCache

        cache = ResultCache()
        spec = tiny_spec()
        with ExecutionContext(seed=0, cache=cache) as ctx:
            first = SweepRunner(spec, ctx).run()
        hits_before = cache.hits
        with ExecutionContext(seed=0, cache=cache) as ctx:
            second = SweepRunner(spec, ctx).run()
        assert [r["metrics"] for r in first.records] == [r["metrics"] for r in second.records]
        assert cache.hits > hits_before

    def test_cache_consulted_on_pooled_runs_too(self):
        """A worker-pool context still skips cells the cache already holds."""
        from repro.batch.cache import ResultCache

        cache = ResultCache()
        spec = tiny_spec()
        with ExecutionContext(seed=0, cache=cache) as ctx:
            first = SweepRunner(spec, ctx).run()
        hits_before = cache.hits
        with ExecutionContext(seed=0, workers=2, cache=cache) as ctx:
            pooled = SweepRunner(spec, ctx).run()
        assert [r["metrics"] for r in first.records] == [r["metrics"] for r in pooled.records]
        assert cache.hits >= hits_before + len(spec.expand())


class TestStoreAndReport:
    def test_full_round_trip_toml_to_report_table(self, tmp_path):
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / "poisson_bursts.toml").with_overrides(
            grid={"n": (4,), "arrivals.rate": (1.0,)}, count=2
        )
        store = ResultsStore(tmp_path / "store")
        with ExecutionContext(seed=1, backend="vectorized") as ctx:
            result = SweepRunner(spec, ctx).run(store=store)
        # JSONL round trip.
        loaded = load_records(store.records_path)
        assert loaded == result.records
        for line in pathlib.Path(store.records_path).read_text().splitlines():
            json.loads(line)
        # Summary file exists and matches the in-memory table.
        summary = pathlib.Path(store.summary_path).read_text()
        assert result.to_markdown() in summary
        # Report renders from the store directory.
        report = render_sweep_report(tmp_path / "store", title="Sweep check")
        assert "## Sweep check" in report
        assert "poisson-bursts" in report
        assert "WDEQ" in report

    def test_summary_table_deterministic_order(self):
        records = [
            {"scenario": "s", "cell": 1, "params": {"n": 2}, "label": "B", "count": 1,
             "metrics": {"m": 2.0}},
            {"scenario": "s", "cell": 0, "params": {"n": 1}, "label": "A", "count": 1,
             "metrics": {"m": 1.0}},
        ]
        headers, rows = summary_table(records)
        assert headers == ["scenario", "cell", "params", "label", "count", "m"]
        assert [row[1] for row in rows] == [0, 1]

    def test_append_accumulates(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = {"scenario": "s", "cell": 0, "params": {}, "label": "A", "count": 1,
                  "metrics": {"m": 1.0}}
        store.append(record)
        store.append(record)
        assert len(store.load()) == 2


class TestSweepCli:
    def test_dry_run_prints_grid(self, capsys):
        from repro.cli import main

        assert main(["sweep", str(SCENARIO_DIR / "poisson_bursts.toml"), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "4 cell(s)" in out
        assert "arrivals.rate=0.5" in out

    def test_list_scenarios(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bursty-poisson" in out and "e5-policy-comparison" in out

    def test_spec_required_without_list(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="spec"):
            main(["sweep"])

    def test_registry_name_runs_and_persists(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "results"
        code = main(
            [
                "sweep",
                str(SCENARIO_DIR / "trace_replay.toml"),
                "--batch",
                "--output-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "results.jsonl").is_file()
        assert (out_dir / "summary.md").is_file()
        out = capsys.readouterr().out
        assert "record(s)" in out

    def test_unknown_scenario_name_raises(self):
        from repro.cli import main

        with pytest.raises(KeyError, match="unknown scenario"):
            main(["sweep", "definitely-not-a-scenario"])


class TestExperimentPorts:
    def test_e5_rows_match_standalone_sweep(self):
        """The ported E5 large-n section equals the registry sweep's records."""
        from repro.experiments import run_experiment

        ctx = ExecutionContext(seed=0, backend="vectorized")
        result = run_experiment(
            "E5", ctx=ctx, small_sizes=(), small_count=1, large_sizes=(8,), large_count=3
        )
        spec = get_scenario("e5-policy-comparison").with_overrides(grid={"n": (8,)}, count=3)
        sweep = SweepRunner(spec, ctx).run()
        wdeq = next(r for r in sweep.records if r["label"] == "WDEQ")
        row = next(r for r in result.rows if r[0] == "WDEQ / lower bound")
        assert row[1] == 8 and row[2] == 3
        assert row[3] == f"{wdeq['metrics']['mean_ratio']:.3f}"
        assert row[4] == f"{wdeq['metrics']['max_ratio']:.3f}"

    def test_e8_uses_bandwidth_pipeline(self):
        from repro.experiments import run_experiment

        result = run_experiment("E8", worker_counts=(5,), count=2)
        assert any("scenario sweep" in note for note in result.notes)
        assert result.summary["WDEQ >= best naive strategy on average"] is True

    def test_e7_solver_rows_come_from_scenario(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "E7", sizes=(10,), lp_sizes=(), simplex_sizes=(), batch_sizes=()
        )
        assert len(result.rows) == 1
        assert result.rows[0][0] == 10
