"""Tests for the schedule validity checkers (repro.core.validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InfeasibleScheduleError
from repro.core.schedule import (
    ColumnSchedule,
    ContinuousSchedule,
    ProcessorAssignment,
    ProcessorSegment,
)
from repro.core.validation import (
    check_column_schedule,
    check_continuous_schedule,
    check_processor_assignment,
    validate_column_schedule,
    validate_continuous_schedule,
    validate_processor_assignment,
)


@pytest.fixture
def instance() -> Instance:
    return Instance(P=2, tasks=[Task(2, 1, 1), Task(2, 1, 2)])


def make_column(instance, rates, completions=(2.0, 2.0), order=(0, 1)):
    return ColumnSchedule(instance, list(order), list(completions), np.asarray(rates, float))


class TestColumnChecks:
    def test_valid_schedule_passes(self, instance):
        sched = make_column(instance, [[1.0, 0.0], [1.0, 0.0]])
        assert check_column_schedule(sched) == []
        validate_column_schedule(sched)  # must not raise

    def test_cap_violation_detected(self, instance):
        sched = make_column(instance, [[1.5, 0.0], [0.5, 0.0]], completions=(4 / 3, 4 / 3 + 1))
        # Task 0 (delta = 1) at rate 1.5 exceeds its cap.
        violations = check_column_schedule(sched)
        assert any("delta" in v for v in violations)

    def test_capacity_violation_detected(self, instance):
        sched = make_column(instance, [[1.0, 0.0], [2.0, 0.0]], completions=(1.5, 2.0))
        violations = check_column_schedule(sched)
        assert any("P=" in v for v in violations)

    def test_volume_mismatch_detected(self, instance):
        sched = make_column(instance, [[0.5, 0.0], [1.0, 0.0]])
        violations = check_column_schedule(sched)
        assert any("processed volume" in v for v in violations)

    def test_allocation_after_completion_detected(self, instance):
        # Task 0 completes at the end of column 0 but still gets resources in column 1.
        rates = np.array([[0.75, 0.5], [1.0, 1.0]])
        sched = ColumnSchedule(instance, [0, 1], [1.0, 2.0], rates)
        violations = check_column_schedule(sched)
        assert any("after its completion" in v for v in violations)

    def test_negative_rate_detected(self, instance):
        sched = make_column(instance, [[-0.5, 1.5], [1.0, 0.0]])
        assert any("negative" in v for v in check_column_schedule(sched))

    def test_validate_raises(self, instance):
        sched = make_column(instance, [[0.5, 0.0], [1.0, 0.0]])
        with pytest.raises(InfeasibleScheduleError):
            validate_column_schedule(sched)

    def test_empty_schedule_is_valid(self):
        inst = Instance(P=1, tasks=[])
        sched = ColumnSchedule(inst, [], [], np.zeros((0, 0)))
        assert check_column_schedule(sched) == []


class TestContinuousChecks:
    def test_valid(self, instance):
        sched = ContinuousSchedule(instance, [0.0, 2.0], np.array([[1.0], [1.0]]))
        assert check_continuous_schedule(sched) == []
        validate_continuous_schedule(sched)

    def test_cap_violation(self, instance):
        sched = ContinuousSchedule(instance, [0.0, 1.0, 2.0], np.array([[2.0, 0.0], [1.0, 1.0]]))
        assert any("cap" in v for v in check_continuous_schedule(sched))

    def test_capacity_violation(self, instance):
        sched = ContinuousSchedule(instance, [0.0, 1.0, 2.0], np.array([[1.0, 1.0], [2.0, 0.0]]))
        assert any("P=" in v for v in check_continuous_schedule(sched))

    def test_volume_mismatch(self, instance):
        sched = ContinuousSchedule(instance, [0.0, 1.0], np.array([[1.0], [1.0]]))
        violations = check_continuous_schedule(sched)
        assert any("processed volume" in v for v in violations)
        with pytest.raises(InfeasibleScheduleError):
            validate_continuous_schedule(sched)


class TestProcessorAssignmentChecks:
    def test_valid(self, instance):
        pa = ProcessorAssignment(
            instance,
            2,
            [
                [ProcessorSegment(0.0, 2.0, 0)],
                [ProcessorSegment(0.0, 2.0, 1)],
            ],
        )
        assert check_processor_assignment(pa) == []
        validate_processor_assignment(pa)

    def test_overlap_detected(self, instance):
        pa = ProcessorAssignment(
            instance,
            2,
            [
                [ProcessorSegment(0.0, 1.5, 0), ProcessorSegment(1.0, 3.0, 1)],
                [ProcessorSegment(0.0, 0.5, 0), ProcessorSegment(1.0, 2.0, 1)],
            ],
        )
        assert any("overlap" in v for v in check_processor_assignment(pa))

    def test_volume_mismatch_detected(self, instance):
        pa = ProcessorAssignment(
            instance,
            2,
            [[ProcessorSegment(0.0, 1.0, 0)], [ProcessorSegment(0.0, 2.0, 1)]],
        )
        assert any("processed volume" in v for v in check_processor_assignment(pa))

    def test_simultaneous_cap_detected(self, instance):
        # Task 0 has delta = 1 but runs on both processors simultaneously.
        pa = ProcessorAssignment(
            instance,
            2,
            [
                [ProcessorSegment(0.0, 1.0, 0), ProcessorSegment(1.0, 2.0, 1)],
                [ProcessorSegment(0.0, 1.0, 0), ProcessorSegment(1.0, 2.0, 1)],
            ],
        )
        assert any("simultaneous" in v for v in check_processor_assignment(pa))
        with pytest.raises(InfeasibleScheduleError):
            validate_processor_assignment(pa)
