"""End-to-end integration tests chaining the major subsystems together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.algorithms.greedy import best_greedy_schedule
from repro.algorithms.optimal import optimal_schedule
from repro.algorithms.preemption import assign_processors
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.bandwidth.network import BandwidthScenario
from repro.bandwidth.transfer import plan_transfers, scenario_to_instance
from repro.core.bounds import combined_lower_bound
from repro.core.validation import (
    validate_column_schedule,
    validate_processor_assignment,
)
from repro.simulation.nonclairvoyant import run_wdeq_online
from repro.viz.gantt import render_allocation_chart, render_processor_gantt
from repro.workloads.generators import cluster_instances, uniform_instances


class TestFullPipeline:
    """Instance -> algorithm -> normal form -> processors -> report."""

    def test_wdeq_to_processors_pipeline(self):
        instance = next(cluster_instances(12, 1, P=8.0, rng=42))
        online = run_wdeq_online(instance)
        analytic = wdeq_schedule(instance)
        np.testing.assert_allclose(
            online.completion_times, analytic.completion_times_by_task(), rtol=1e-7
        )
        normal_form = water_filling_schedule(instance, online.completion_times)
        validate_column_schedule(normal_form)
        assignment = assign_processors(normal_form)
        validate_processor_assignment(assignment)
        # Objective sandwich: lower bound <= schedule value <= 2 * lower bound.
        bound = combined_lower_bound(instance)
        value = online.weighted_completion_time()
        assert bound <= value + 1e-9
        assert value <= 2 * bound * (1 + 1e-6) + 1e-9
        # The charts render without error and mention every processor.
        chart = render_processor_gantt(assignment, width=40)
        assert chart.count("P1") == 1

    def test_optimal_greedy_wdeq_ordering_consistency(self):
        """optimal <= greedy <= WDEQ, and WDEQ <= 2 optimal (Theorem 4)."""
        for seed in range(3):
            instance = next(uniform_instances(4, 1, rng=seed))
            opt = optimal_schedule(instance).objective
            greedy = best_greedy_schedule(instance).objective
            wdeq = wdeq_schedule(instance).weighted_completion_time()
            assert opt <= greedy + 1e-9
            assert greedy <= wdeq + 1e-9 or greedy == pytest.approx(wdeq, rel=1e-9)
            assert wdeq <= 2 * opt + 1e-6

    def test_normal_form_idempotent(self):
        """Normalising a normal form changes nothing (fixed point of WF)."""
        instance = next(cluster_instances(8, 1, P=4.0, rng=7))
        targets = wdeq_schedule(instance).completion_times_by_task()
        first = water_filling_schedule(instance, targets)
        second = water_filling_schedule(instance, first.completion_times_by_task())
        np.testing.assert_allclose(first.rates, second.rates, atol=1e-7)

    def test_bandwidth_scenario_round_trip(self):
        scenario = BandwidthScenario.random(8, rng=3)
        instance = scenario_to_instance(scenario)
        plans = {p.strategy: p for p in plan_transfers(scenario)}
        # The greedy plan's completion times are feasible: WF accepts them.
        greedy_plan = plans["greedy (Smith + local search)"]
        normal_form = water_filling_schedule(instance, greedy_plan.completion_times)
        validate_column_schedule(normal_form)
        # And the equivalence of Section I: better objective <=> better
        # unclamped throughput.
        ordered_by_objective = sorted(
            plans.values(), key=lambda p: p.weighted_completion_time(scenario)
        )
        ordered_by_throughput = sorted(
            plans.values(), key=lambda p: -p.throughput(scenario, clamp=False)
        )
        assert [p.strategy for p in ordered_by_objective] == [
            p.strategy for p in ordered_by_throughput
        ]

    def test_gantt_of_every_representation(self, small_instance):
        column = wdeq_schedule(small_instance)
        continuous = column.to_continuous()
        assignment = assign_processors(
            water_filling_schedule(small_instance, column.completion_times_by_task())
        )
        assert render_allocation_chart(column, width=30)
        assert render_allocation_chart(continuous, width=30)
        assert render_processor_gantt(assignment, width=30)


class TestCrossSolverAgreement:
    """The LP backends and the greedy/optimal searches agree where they must."""

    def test_theorem11_family_agreement(self):
        from repro.workloads.generators import large_delta_instances

        for instance in large_delta_instances(4, 3, P=1.0, rng=11):
            opt_scipy = optimal_schedule(instance, backend="scipy").objective
            opt_simplex = optimal_schedule(instance, backend="simplex").objective
            greedy = best_greedy_schedule(instance).objective
            assert opt_scipy == pytest.approx(opt_simplex, rel=1e-6)
            assert greedy == pytest.approx(opt_scipy, rel=1e-6)

    def test_single_processor_reduces_to_smith(self):
        """With P = 1 and delta_i = 1 the problem is 1|pmtn|sum w_i C_i."""
        from repro.core.bounds import squashed_area_bound

        instance = Instance(
            P=1,
            tasks=[Task(3, 1, 1), Task(1, 2, 1), Task(2, 1, 1)],
        )
        assert optimal_schedule(instance).objective == pytest.approx(
            squashed_area_bound(instance), rel=1e-6
        )
        assert best_greedy_schedule(instance).objective == pytest.approx(
            squashed_area_bound(instance), rel=1e-6
        )
