"""Cross-checks between alternative implementations (DESIGN.md design choices).

Each design choice listed in DESIGN.md keeps an alternative implementation
around as an oracle; these tests confirm the alternatives agree with the
defaults, so the ablation benchmarks compare genuinely interchangeable code
paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.greedy import greedy_completion_times
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.core.exceptions import InfeasibleScheduleError, InvalidScheduleError
from repro.core.instance import Instance, Task
from tests.conftest import random_instance


class TestWaterLevelSearchAblation:
    """Exact breakpoint scan vs bisection for the WF water level."""

    def test_scan_and_bisect_agree(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=5, P=2.0)
            targets = wdeq_schedule(inst).completion_times_by_task()
            scan = water_filling_schedule(inst, targets, level_search="scan")
            bisect = water_filling_schedule(inst, targets, level_search="bisect")
            np.testing.assert_allclose(scan.rates, bisect.rates, atol=1e-6)
            np.testing.assert_allclose(
                scan.completion_times_by_task(), bisect.completion_times_by_task()
            )

    def test_bisect_detects_infeasibility(self):
        inst = Instance(P=2, tasks=[Task(volume=10, delta=2)])
        with pytest.raises(InfeasibleScheduleError):
            water_filling_schedule(inst, [1.0], level_search="bisect")

    def test_unknown_method_rejected(self, small_instance):
        targets = wdeq_schedule(small_instance).completion_times_by_task()
        with pytest.raises(InvalidScheduleError):
            water_filling_schedule(small_instance, targets, level_search="newton")


def _dense_grid_greedy_completion_times(
    instance: Instance, order, resolution: int = 20_000
) -> np.ndarray:
    """Brute-force time-grid oracle for the greedy scheduler.

    Divides the horizon into tiny slots and, task by task in the given order,
    lets each task grab ``min(delta, remaining capacity)`` in every slot from
    the start until its volume is exhausted.  Accurate to O(horizon /
    resolution); used only to validate the exact profile-based implementation.
    """
    horizon = float(np.sum(instance.heights) + instance.total_volume / instance.P) + 1.0
    dt = horizon / resolution
    capacity = np.full(resolution, float(instance.P))
    completions = np.zeros(instance.n)
    for task in order:
        remaining = float(instance.volumes[task])
        delta = float(instance.deltas[task])
        for slot in range(resolution):
            if remaining <= 0:
                break
            rate = min(delta, capacity[slot])
            if rate <= 0:
                continue
            work = min(rate * dt, remaining)
            used_rate = work / dt
            capacity[slot] -= used_rate
            remaining -= work
            completions[task] = (slot + 1) * dt
    return completions


class TestGreedyProfileAblation:
    """Capacity-profile greedy vs a dense time-grid oracle."""

    def test_matches_dense_grid_oracle(self, rng):
        for _ in range(3):
            inst = random_instance(rng, n=4, P=2.0)
            order = list(rng.permutation(4))
            exact = greedy_completion_times(inst, order)
            approx = _dense_grid_greedy_completion_times(inst, order)
            # The grid oracle over-estimates each completion by at most one slot
            # per preceding task; a loose relative tolerance captures that.
            np.testing.assert_allclose(approx, exact, rtol=5e-3, atol=5e-3)
