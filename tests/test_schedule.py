"""Unit tests for the schedule representations (repro.core.schedule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidScheduleError
from repro.core.schedule import (
    ColumnSchedule,
    ContinuousSchedule,
    ProcessorAssignment,
    ProcessorSegment,
)


@pytest.fixture
def simple_column_schedule() -> ColumnSchedule:
    """P=2; T0 (V=2, delta=2) then T1 (V=2, delta=2).

    Column 0 = [0, 1]: T0 at rate 2.  Column 1 = [1, 2]: T1 at rate 2.
    """
    inst = Instance(P=2, tasks=[Task(2, 1, 2), Task(2, 1, 2)])
    rates = np.array([[2.0, 0.0], [0.0, 2.0]])
    return ColumnSchedule(inst, order=[0, 1], completion_times=[1.0, 2.0], rates=rates)


class TestColumnSchedule:
    def test_geometry(self, simple_column_schedule):
        sched = simple_column_schedule
        np.testing.assert_allclose(sched.column_lengths, [1.0, 1.0])
        assert sched.column_bounds(0) == (0.0, 1.0)
        assert sched.column_bounds(1) == (1.0, 2.0)
        assert sched.position_of(0) == 0
        assert sched.position_of(1) == 1

    def test_objectives(self, simple_column_schedule):
        sched = simple_column_schedule
        np.testing.assert_allclose(sched.completion_times_by_task(), [1.0, 2.0])
        assert sched.weighted_completion_time() == pytest.approx(3.0)
        assert sched.total_completion_time() == pytest.approx(3.0)
        assert sched.makespan() == pytest.approx(2.0)

    def test_processed_volumes_and_loads(self, simple_column_schedule):
        sched = simple_column_schedule
        np.testing.assert_allclose(sched.processed_volumes(), [2.0, 2.0])
        np.testing.assert_allclose(sched.column_loads(), [2.0, 2.0])

    def test_saturation_matrix(self, simple_column_schedule):
        sat = simple_column_schedule.saturation_matrix()
        assert sat[0, 0] and sat[1, 1]
        assert not sat[0, 1] and not sat[1, 0]

    def test_order_must_be_permutation(self, simple_column_schedule):
        inst = simple_column_schedule.instance
        with pytest.raises(InvalidScheduleError):
            ColumnSchedule(inst, [0, 0], [1.0, 2.0], np.zeros((2, 2)))

    def test_completion_times_must_be_sorted(self, simple_column_schedule):
        inst = simple_column_schedule.instance
        with pytest.raises(InvalidScheduleError):
            ColumnSchedule(inst, [0, 1], [2.0, 1.0], np.zeros((2, 2)))

    def test_completion_times_must_be_nonnegative(self, simple_column_schedule):
        inst = simple_column_schedule.instance
        with pytest.raises(InvalidScheduleError):
            ColumnSchedule(inst, [0, 1], [-1.0, 1.0], np.zeros((2, 2)))

    def test_rates_shape_checked(self, simple_column_schedule):
        inst = simple_column_schedule.instance
        with pytest.raises(InvalidScheduleError):
            ColumnSchedule(inst, [0, 1], [1.0, 2.0], np.zeros((2, 3)))

    def test_rates_are_copied_and_read_only(self, simple_column_schedule):
        with pytest.raises(ValueError):
            simple_column_schedule.rates[0, 0] = 99

    def test_allocation_change_count_constant_rates(self, simple_column_schedule):
        assert simple_column_schedule.allocation_change_count() == 0
        assert simple_column_schedule.allocation_change_count(convention="all") == 0

    def test_allocation_change_count_paper_vs_all(self):
        # Task 0 runs at 1.0 (unsaturated, delta=3) then jumps to 3.0 = delta:
        # the "all" convention counts the jump, the paper convention does not.
        inst = Instance(P=4, tasks=[Task(4, 1, 3), Task(1, 1, 1)])
        rates = np.array([[1.0, 3.0], [1.0, 0.0]])
        sched = ColumnSchedule(inst, [1, 0], [1.0, 2.0], rates)
        assert sched.allocation_change_count(convention="all") == 1
        assert sched.allocation_change_count(convention="paper") == 0

    def test_allocation_change_count_unknown_convention(self, simple_column_schedule):
        with pytest.raises(InvalidScheduleError):
            simple_column_schedule.allocation_change_count(convention="bogus")

    def test_repr(self, simple_column_schedule):
        assert "ColumnSchedule" in repr(simple_column_schedule)

    def test_empty_schedule(self):
        inst = Instance(P=1, tasks=[])
        sched = ColumnSchedule(inst, [], [], np.zeros((0, 0)))
        assert sched.makespan() == 0.0
        assert sched.weighted_completion_time() == 0.0


class TestContinuousSchedule:
    def test_completion_times(self):
        inst = Instance(P=2, tasks=[Task(2, 1, 2), Task(1, 1, 1)])
        sched = ContinuousSchedule(
            inst, [0.0, 1.0, 2.0], np.array([[1.0, 1.0], [1.0, 0.0]])
        )
        np.testing.assert_allclose(sched.completion_times(), [2.0, 1.0])
        np.testing.assert_allclose(sched.processed_volumes(), [2.0, 1.0])
        assert sched.makespan() == pytest.approx(2.0)
        assert sched.weighted_completion_time() == pytest.approx(3.0)

    def test_rate_at(self):
        inst = Instance(P=2, tasks=[Task(2, 1, 2)])
        sched = ContinuousSchedule(inst, [0.0, 1.0, 2.0], np.array([[2.0, 0.5]]))
        assert sched.rate_at(0, 0.5) == pytest.approx(2.0)
        assert sched.rate_at(0, 1.5) == pytest.approx(0.5)
        assert sched.rate_at(0, -1.0) == 0.0
        assert sched.rate_at(0, 5.0) == 0.0

    def test_breakpoints_validation(self):
        inst = Instance(P=1, tasks=[Task(1)])
        with pytest.raises(InvalidScheduleError):
            ContinuousSchedule(inst, [1.0, 2.0], np.ones((1, 1)))
        with pytest.raises(InvalidScheduleError):
            ContinuousSchedule(inst, [0.0, 0.0, 1.0], np.ones((1, 2)))
        with pytest.raises(InvalidScheduleError):
            ContinuousSchedule(inst, [0.0, 1.0], np.ones((2, 1)))

    def test_interval_lengths(self):
        inst = Instance(P=1, tasks=[Task(1)])
        sched = ContinuousSchedule(inst, [0.0, 0.25, 1.0], np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(sched.interval_lengths, [0.25, 0.75])

    def test_repr(self):
        inst = Instance(P=1, tasks=[Task(1)])
        sched = ContinuousSchedule(inst, [0.0, 1.0], np.array([[1.0]]))
        assert "ContinuousSchedule" in repr(sched)


class TestProcessorAssignment:
    def _assignment(self) -> ProcessorAssignment:
        inst = Instance(P=2, tasks=[Task(2, 1, 2), Task(1, 1, 1)])
        segments = [
            [ProcessorSegment(0.0, 1.0, 0), ProcessorSegment(1.0, 2.0, 1)],
            [ProcessorSegment(0.0, 1.0, 0)],
        ]
        return ProcessorAssignment(inst, 2, segments)

    def test_completion_and_volumes(self):
        pa = self._assignment()
        np.testing.assert_allclose(pa.completion_times(), [1.0, 2.0])
        np.testing.assert_allclose(pa.processed_volumes(), [2.0, 1.0])
        assert pa.makespan() == pytest.approx(2.0)
        assert pa.weighted_completion_time() == pytest.approx(3.0)

    def test_task_segments(self):
        pa = self._assignment()
        segs = pa.task_segments(0)
        assert len(segs) == 2
        assert {p for p, _ in segs} == {0, 1}

    def test_max_simultaneous(self):
        pa = self._assignment()
        assert pa.max_simultaneous_processors(0) == 2
        assert pa.max_simultaneous_processors(1) == 1

    def test_no_preemptions_when_tasks_run_to_completion(self):
        pa = self._assignment()
        assert pa.count_preemptions() == 0
        assert pa.count_migrations() == 0

    def test_preemption_counted(self):
        inst = Instance(P=1, tasks=[Task(2, 1, 1), Task(1, 1, 1)])
        segments = [
            [
                ProcessorSegment(0.0, 1.0, 0),
                ProcessorSegment(1.0, 2.0, 1),
                ProcessorSegment(2.0, 3.0, 0),
            ]
        ]
        pa = ProcessorAssignment(inst, 1, segments)
        # Task 0 is interrupted at t=1 and resumes at t=2 -> one preemption.
        assert pa.count_preemptions() == 1

    def test_contiguous_segments_merged_before_counting(self):
        inst = Instance(P=1, tasks=[Task(2, 1, 1)])
        segments = [[ProcessorSegment(0.0, 1.0, 0), ProcessorSegment(1.0, 2.0, 0)]]
        pa = ProcessorAssignment(inst, 1, segments)
        assert pa.count_preemptions() == 0

    def test_invalid_segment_rejected(self):
        inst = Instance(P=1, tasks=[Task(1)])
        with pytest.raises(InvalidScheduleError):
            ProcessorAssignment(inst, 1, [[ProcessorSegment(1.0, 0.5, 0)]])
        with pytest.raises(InvalidScheduleError):
            ProcessorAssignment(inst, 1, [[ProcessorSegment(0.0, 1.0, 7)]])

    def test_segment_list_length_checked(self):
        inst = Instance(P=1, tasks=[Task(1)])
        with pytest.raises(InvalidScheduleError):
            ProcessorAssignment(inst, 2, [[]])

    def test_repr(self):
        assert "ProcessorAssignment" in repr(self._assignment())
