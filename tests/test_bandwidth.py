"""Tests for the bandwidth-sharing substrate (Figure 1 scenario)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandwidth import (
    BandwidthScenario,
    TransferPlan,
    Worker,
    plan_transfers,
    scenario_to_instance,
    throughput,
)
from repro.bandwidth.transfer import (
    fair_share_completion_times,
    sequential_completion_times,
)
from repro.core.exceptions import InvalidInstanceError


@pytest.fixture
def scenario() -> BandwidthScenario:
    workers = [
        Worker(name="w1", code_size=100.0, incoming_bandwidth=100.0, processing_rate=2.0),
        Worker(name="w2", code_size=400.0, incoming_bandwidth=200.0, processing_rate=1.0),
        Worker(name="w3", code_size=200.0, incoming_bandwidth=50.0, processing_rate=4.0),
    ]
    return BandwidthScenario(server_bandwidth=250.0, workers=workers).with_default_horizon(2.0)


class TestWorkerAndScenario:
    def test_worker_validation(self):
        with pytest.raises(InvalidInstanceError):
            Worker("w", code_size=0, incoming_bandwidth=1, processing_rate=1)
        with pytest.raises(InvalidInstanceError):
            Worker("w", code_size=1, incoming_bandwidth=0, processing_rate=1)
        with pytest.raises(InvalidInstanceError):
            Worker("w", code_size=1, incoming_bandwidth=1, processing_rate=-1)

    def test_minimal_transfer_time(self):
        worker = Worker("w", code_size=100, incoming_bandwidth=50, processing_rate=1)
        assert worker.minimal_transfer_time == pytest.approx(2.0)

    def test_scenario_validation(self):
        with pytest.raises(InvalidInstanceError):
            BandwidthScenario(server_bandwidth=0, workers=[])
        with pytest.raises(InvalidInstanceError):
            BandwidthScenario(server_bandwidth=1, workers=[], horizon=-1)

    def test_lower_bound_horizon(self, scenario):
        # total codes 700 / 250 = 2.8; slowest single transfer 200/50 = 4.
        assert scenario.lower_bound_horizon() == pytest.approx(4.0)
        assert scenario.horizon == pytest.approx(8.0)

    def test_random_scenario(self):
        scenario = BandwidthScenario.random(5, rng=0)
        assert scenario.num_workers == 5
        assert scenario.horizon > 0


class TestMapping:
    def test_scenario_to_instance(self, scenario):
        inst = scenario_to_instance(scenario)
        assert inst.n == 3
        assert inst.P == 250.0
        np.testing.assert_allclose(inst.volumes, [100, 400, 200])
        np.testing.assert_allclose(inst.deltas, [100, 200, 50])
        np.testing.assert_allclose(inst.weights, [2, 1, 4])

    def test_empty_scenario_rejected(self):
        with pytest.raises(InvalidInstanceError):
            scenario_to_instance(BandwidthScenario(server_bandwidth=10, workers=[]))

    def test_zero_processing_rate_gets_tiny_weight(self):
        scenario = BandwidthScenario(
            server_bandwidth=10,
            workers=[Worker("w", code_size=1, incoming_bandwidth=1, processing_rate=0.0)],
        )
        inst = scenario_to_instance(scenario)
        assert inst.weights[0] > 0


class TestThroughput:
    def test_unclamped_equivalence_with_weighted_completion(self, scenario):
        """Maximising sum w_i (T - C_i) == minimising sum w_i C_i (Section I)."""
        inst = scenario_to_instance(scenario)
        completions_a = sequential_completion_times(inst)
        completions_b = fair_share_completion_times(inst)
        rates = np.array([w.processing_rate for w in scenario.workers])
        for completions in (completions_a, completions_b):
            unclamped = throughput(scenario, completions, clamp=False)
            expected = scenario.horizon * rates.sum() - float(np.dot(rates, completions))
            assert unclamped == pytest.approx(expected)

    def test_clamped_never_exceeds_unclamped_magnitude(self, scenario):
        inst = scenario_to_instance(scenario)
        completions = sequential_completion_times(inst)
        assert throughput(scenario, completions, clamp=True) >= throughput(
            scenario, completions, clamp=False
        ) - 1e-9

    def test_shape_checked(self, scenario):
        with pytest.raises(InvalidInstanceError):
            throughput(scenario, [1.0])


class TestPlans:
    def test_default_strategy_lineup(self, scenario):
        plans = plan_transfers(scenario)
        names = {p.strategy for p in plans}
        assert "sequential" in names and "WDEQ" in names
        assert all(isinstance(p, TransferPlan) for p in plans)

    def test_wdeq_no_worse_than_sequential(self, scenario):
        plans = {p.strategy: p for p in plan_transfers(scenario)}
        assert plans["WDEQ"].weighted_completion_time(scenario) <= (
            plans["sequential"].weighted_completion_time(scenario) + 1e-6
        )

    def test_greedy_best_objective(self, scenario):
        plans = {p.strategy: p for p in plan_transfers(scenario)}
        greedy = plans["greedy (Smith + local search)"]
        for name, plan in plans.items():
            assert greedy.weighted_completion_time(scenario) <= (
                plan.weighted_completion_time(scenario) + 1e-6
            ), name

    def test_custom_strategy(self, scenario):
        plans = plan_transfers(scenario, strategies={"seq": sequential_completion_times})
        assert len(plans) == 1 and plans[0].strategy == "seq"

    def test_plan_throughput_method(self, scenario):
        plan = plan_transfers(scenario, strategies={"seq": sequential_completion_times})[0]
        assert plan.throughput(scenario) == pytest.approx(
            throughput(scenario, plan.completion_times)
        )
