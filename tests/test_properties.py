"""Property-based tests (hypothesis) on the core invariants of the library.

These tests exercise randomly generated instances far beyond the hand-picked
unit-test cases.  Each property is a statement proved in the paper (or a
direct consequence), so a counterexample would indicate an implementation
bug, not an unlucky draw.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Instance, Task
from repro.core.bounds import (
    combined_lower_bound,
    height_bound,
    mixed_lower_bound,
    squashed_area_bound,
)
from repro.core.validation import (
    check_column_schedule,
    check_continuous_schedule,
    check_processor_assignment,
)
from repro.algorithms.greedy import best_greedy_schedule, greedy_completion_times
from repro.algorithms.greedy_homogeneous import homogeneous_greedy_value
from repro.algorithms.makespan import minimal_makespan
from repro.algorithms.optimal import optimal_value
from repro.algorithms.preemption import assign_processors
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_allocation, wdeq_schedule

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

positive = st.floats(min_value=0.05, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def instances(draw, min_tasks=1, max_tasks=6, max_platform=8.0):
    """Random malleable-task instances with positive weights."""
    n = draw(st.integers(min_value=min_tasks, max_value=max_tasks))
    P = draw(st.floats(min_value=0.5, max_value=max_platform))
    tasks = []
    for _ in range(n):
        volume = draw(positive)
        weight = draw(st.floats(min_value=0.05, max_value=5.0))
        delta = draw(st.floats(min_value=0.05, max_value=P))
        tasks.append(Task(volume=volume, weight=weight, delta=delta))
    return Instance(P=P, tasks=tasks)


@st.composite
def integer_instances(draw, min_tasks=1, max_tasks=6):
    """Instances with an integer platform and integer caps."""
    n = draw(st.integers(min_value=min_tasks, max_value=max_tasks))
    P = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    for _ in range(n):
        volume = draw(positive)
        weight = draw(st.floats(min_value=0.05, max_value=5.0))
        delta = draw(st.integers(min_value=1, max_value=P))
        tasks.append(Task(volume=volume, weight=weight, delta=float(delta)))
    return Instance(P=float(P), tasks=tasks)


COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# WDEQ allocation rule
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(
    P=st.floats(min_value=0.5, max_value=16.0),
    weights=st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=1, max_size=8),
    data=st.data(),
)
def test_wdeq_allocation_feasible_and_monotone(P, weights, data):
    deltas = data.draw(
        st.lists(
            st.floats(min_value=0.05, max_value=P),
            min_size=len(weights),
            max_size=len(weights),
        )
    )
    alloc = wdeq_allocation(P, weights, deltas)
    assert np.all(alloc >= -1e-12)
    assert np.all(alloc <= np.asarray(deltas) + 1e-9)
    assert alloc.sum() <= P + 1e-9
    # The sharing is work-conserving up to the caps: either the platform is
    # fully used or every task is at its cap.
    if alloc.sum() < P - 1e-6:
        assert np.all(np.abs(alloc - np.asarray(deltas)) <= 1e-6)


# ---------------------------------------------------------------------------
# Schedules produced by the algorithms are valid
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(instance=instances())
def test_wdeq_schedule_is_valid(instance):
    sched = wdeq_schedule(instance)
    assert check_column_schedule(sched) == []


@COMMON_SETTINGS
@given(instance=instances())
def test_water_filling_normalisation_preserves_completions(instance):
    targets = wdeq_schedule(instance).completion_times_by_task()
    sched = water_filling_schedule(instance, targets)
    assert check_column_schedule(sched) == []
    np.testing.assert_allclose(sched.completion_times_by_task(), targets, rtol=1e-7, atol=1e-9)


@COMMON_SETTINGS
@given(instance=instances())
def test_water_filling_change_count_bound(instance):
    targets = wdeq_schedule(instance).completion_times_by_task()
    sched = water_filling_schedule(instance, targets)
    assert sched.allocation_change_count(convention="paper") <= instance.n
    assert sched.allocation_change_count(convention="all") <= 2 * instance.n


@COMMON_SETTINGS
@given(instance=instances(), data=st.data())
def test_greedy_schedule_valid_for_any_order(instance, data):
    order = data.draw(st.permutations(list(range(instance.n))))
    completions = greedy_completion_times(instance, order)
    assert np.all(completions > 0)
    # Greedy completion times are at least the task heights and at least the
    # work lower bound of everything scheduled before them.
    heights = instance.heights
    for position, task in enumerate(order):
        assert completions[task] >= heights[task] - 1e-9


@COMMON_SETTINGS
@given(instance=integer_instances())
def test_integer_conversion_valid(instance):
    targets = wdeq_schedule(instance).completion_times_by_task()
    sched = water_filling_schedule(instance, targets)
    assignment = assign_processors(sched)
    assert check_processor_assignment(assignment) == []
    lateness = assignment.completion_times() - targets
    assert float(np.max(lateness)) <= 1e-6


# ---------------------------------------------------------------------------
# Bounds and objectives
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(instance=instances(max_tasks=4))
def test_lower_bounds_below_optimum(instance):
    opt = optimal_value(instance)
    assert squashed_area_bound(instance) <= opt * (1 + 1e-6) + 1e-9
    assert height_bound(instance) <= opt * (1 + 1e-6) + 1e-9
    assert combined_lower_bound(instance) <= opt * (1 + 1e-6) + 1e-9


@COMMON_SETTINGS
@given(instance=instances(max_tasks=4))
def test_wdeq_two_approximation(instance):
    ratio = wdeq_schedule(instance).weighted_completion_time() / optimal_value(instance)
    assert ratio <= 2.0 + 1e-6


@COMMON_SETTINGS
@given(instance=instances(max_tasks=4))
def test_best_greedy_matches_optimum_conjecture12(instance):
    greedy = best_greedy_schedule(instance).objective
    opt = optimal_value(instance)
    assert greedy <= opt * (1 + 1e-5) + 1e-7
    assert greedy >= opt - 1e-7


@COMMON_SETTINGS
@given(instance=instances(), fraction=st.floats(min_value=0.0, max_value=1.0))
def test_mixed_bound_monotone_structure(instance, fraction):
    bound = mixed_lower_bound(instance, np.full(instance.n, fraction))
    assert bound <= combined_lower_bound(instance) + 1e-9
    assert bound >= 0.0


@COMMON_SETTINGS
@given(instance=instances())
def test_makespan_schedule_consistency(instance):
    cmax = minimal_makespan(instance)
    assert cmax >= float(np.max(instance.heights)) - 1e-12
    assert cmax >= instance.total_volume / instance.P - 1e-12
    # WDEQ (a valid schedule) can never beat the optimal makespan.
    assert wdeq_schedule(instance).makespan() >= cmax - 1e-7


# ---------------------------------------------------------------------------
# Section V-B recurrence
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(
    deltas=st.lists(st.floats(min_value=0.5, max_value=1.0), min_size=1, max_size=8),
    data=st.data(),
)
def test_homogeneous_reversal_symmetry(deltas, data):
    order = data.draw(st.permutations(list(range(len(deltas)))))
    forward = homogeneous_greedy_value(deltas, order)
    backward = homogeneous_greedy_value(deltas, list(reversed(order)))
    assert forward == backward or abs(forward - backward) <= 1e-9 * max(abs(forward), 1.0)


@COMMON_SETTINGS
@given(deltas=st.lists(st.floats(min_value=0.5, max_value=1.0), min_size=1, max_size=8))
def test_homogeneous_completions_increasing(deltas):
    completions = homogeneous_greedy_value(deltas)
    assert completions >= len(deltas) * 1.0 - 1e-9  # each unit task needs >= 1 time unit


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(instance=instances())
def test_theorem3_round_trip(instance):
    sched = wdeq_schedule(instance)
    continuous = sched.to_continuous()
    assert check_continuous_schedule(continuous) == []
    back = continuous.to_column()
    assert check_column_schedule(back) == []
    np.testing.assert_allclose(
        back.completion_times_by_task(),
        sched.completion_times_by_task(),
        rtol=1e-7,
        atol=1e-9,
    )
