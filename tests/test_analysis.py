"""Tests for the analysis helpers (ratios, conjectures, orderings, stats)."""

from __future__ import annotations

import pytest

from repro import Instance
from repro.analysis.conjectures import check_conjecture12, check_conjecture13
from repro.analysis.orderings import (
    OrderingStructure,
    five_task_condition_holds,
    measured_optimal_orders,
    optimal_order_structure,
    paper_predicted_orders,
)
from repro.analysis.ratios import GreedyGap, greedy_vs_optimal, policy_ratios, wdeq_ratio
from repro.analysis.stats import SummaryStats, summarize
from repro.core.exceptions import InvalidInstanceError
from tests.conftest import random_instance


class TestStats:
    def test_summary_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_empty_summary(self):
        stats = summarize([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_rows_and_header_align(self):
        stats = summarize([1.0, 2.0])
        assert len(stats.as_row()) == len(SummaryStats.header())


class TestRatios:
    def test_greedy_gap_properties(self):
        gap = GreedyGap(best_greedy=2.0, optimal=1.0)
        assert gap.ratio == 2.0
        assert gap.relative_gap == 1.0
        degenerate = GreedyGap(best_greedy=0.0, optimal=0.0)
        assert degenerate.ratio == 1.0

    def test_greedy_vs_optimal(self, rng):
        inst = random_instance(rng, n=3, P=1.0)
        gap = greedy_vs_optimal(inst)
        assert gap.best_greedy >= gap.optimal - 1e-9
        assert gap.relative_gap == pytest.approx(0.0, abs=1e-6)

    def test_wdeq_ratio_exact_and_bound(self, rng):
        inst = random_instance(rng, n=4, P=2.0)
        exact = wdeq_ratio(inst, exact=True)
        bound = wdeq_ratio(inst, exact=False)
        assert 1.0 - 1e-9 <= exact <= 2.0 + 1e-9
        # The lower bound denominator is smaller than the optimum, so the
        # ratio against it is at least the exact ratio.
        assert bound >= exact - 1e-9

    def test_wdeq_ratio_auto_mode(self, rng):
        small = random_instance(rng, n=3, P=1.0)
        large = random_instance(rng, n=12, P=4.0)
        assert wdeq_ratio(small) <= 2.0 + 1e-9
        assert wdeq_ratio(large) > 0

    def test_policy_ratios_keys(self, rng):
        inst = random_instance(rng, n=4, P=2.0)
        ratios = policy_ratios(inst, exact=True)
        assert "WDEQ" in ratios and "DEQ" in ratios
        assert all(v >= 1.0 - 1e-6 for v in ratios.values())


class TestConjecture12:
    def test_holds_on_random_instances(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=3, P=1.0)
            check = check_conjecture12(inst)
            assert check.holds
            assert check.relative_gap == pytest.approx(0.0, abs=1e-6)
            assert check.best_greedy >= check.optimal - 1e-9


class TestConjecture13:
    def test_exhaustive_small(self, rng):
        deltas = rng.uniform(0.5, 1.0, 4)
        check = check_conjecture13(deltas)
        assert check.holds
        assert check.orders_checked == 24

    def test_sampled_large(self, rng):
        deltas = rng.uniform(0.5, 1.0, 10)
        check = check_conjecture13(deltas, max_orders=50, rng=rng)
        assert check.holds
        assert check.orders_checked == 50

    def test_explicit_orders(self):
        deltas = [0.9, 0.6, 0.7]
        check = check_conjecture13(deltas, orders=[(0, 1, 2), (2, 1, 0)])
        assert check.orders_checked == 2
        assert check.holds


class TestOrderingStructure:
    def test_paper_predicted_orders(self):
        assert paper_predicted_orders(2) == [(0, 1), (1, 0)]
        assert paper_predicted_orders(3) == [(0, 2, 1), (1, 2, 0)]
        assert paper_predicted_orders(4) == [(0, 2, 1, 3), (3, 1, 2, 0)]
        with pytest.raises(InvalidInstanceError):
            paper_predicted_orders(5)

    def test_measured_optimal_orders(self):
        assert measured_optimal_orders(3) == paper_predicted_orders(3)
        assert measured_optimal_orders(4) == [(0, 2, 3, 1), (1, 3, 2, 0)]
        with pytest.raises(InvalidInstanceError):
            measured_optimal_orders(5)

    @pytest.mark.parametrize("n", [2, 3])
    def test_paper_predictions_are_optimal_up_to_three_tasks(self, rng, n):
        for _ in range(5):
            deltas = rng.uniform(0.5, 1.0, n)
            structure = optimal_order_structure(deltas)
            assert isinstance(structure, OrderingStructure)
            assert structure.predictions_optimal

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_measured_pattern_is_optimal(self, rng, n):
        for _ in range(5):
            deltas = rng.uniform(0.5, 1.0, n)
            structure = optimal_order_structure(deltas)
            assert structure.measured_pattern_optimal

    def test_paper_four_task_order_documented_deviation(self, rng):
        """The paper's printed 1,3,2,4 order is not optimal (documented deviation)."""
        mismatches = 0
        for _ in range(5):
            deltas = rng.uniform(0.5, 1.0, 4)
            structure = optimal_order_structure(deltas)
            mismatches += int(not structure.predictions_optimal)
        assert mismatches > 0

    def test_reversed_orders_equally_optimal(self, rng):
        deltas = rng.uniform(0.5, 1.0, 4)
        structure = optimal_order_structure(deltas)
        for order in structure.optimal_orders:
            assert tuple(reversed(order)) in set(structure.optimal_orders)

    def test_five_task_condition_on_optimal_orders(self, rng):
        for _ in range(3):
            deltas = rng.uniform(0.5, 1.0, 5)
            structure = optimal_order_structure(deltas)
            for order in structure.optimal_orders:
                assert five_task_condition_holds(structure.deltas_sorted, order)

    def test_five_task_condition_requires_five(self):
        with pytest.raises(InvalidInstanceError):
            five_task_condition_holds([0.6, 0.7, 0.8], [0, 1, 2])

    def test_empty_structure(self):
        structure = optimal_order_structure([])
        assert structure.optimal_value == 0.0
