"""Tests for repro.service.journal: framing, WAL, snapshots, recovery.

The durability contract under test:

* CRC framing round-trips every newline-free body and rejects every
  single-bit mutation (property-based);
* a journal truncated at *any* byte offset inside its tail record recovers
  exactly the acknowledged prefix — no acked record lost, no torn record
  resurrected (exhaustive over offsets);
* snapshot + journal-suffix replay rebuilds the same
  :class:`~repro.service.state.LiveSystemState` as a full from-scratch
  replay, bit-for-bit (property-based over random op sequences);
* sealed-segment corruption fails loudly (:class:`JournalCorruptError`)
  instead of serving a half-replayed state.
"""

from __future__ import annotations

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SubmitReply, decode_message
from repro.service.journal import (
    JOURNAL_REGISTRY,
    IdempotencyTable,
    Journal,
    JournalCancel,
    JournalCorruptError,
    JournalSubmit,
    ServiceDurability,
    SnapshotStore,
    inspect_journal,
    recover_state,
)
from repro.service.protocol import crc_frame, crc_unframe
from repro.service.state import LiveSystemState

# ---------------------------------------------------------------------------
# CRC framing (property-based)
# ---------------------------------------------------------------------------

_bodies = st.binary(min_size=0, max_size=200).filter(lambda b: b"\n" not in b)


class TestFraming:
    @given(_bodies)
    def test_round_trip(self, body):
        assert crc_unframe(crc_frame(body)) == body

    @given(_bodies, st.integers(min_value=0, max_value=10_000), st.integers(0, 7))
    def test_single_bit_flip_never_yields_a_different_body(self, body, pos, bit):
        line = bytearray(crc_frame(body))
        line[pos % len(line)] ^= 1 << bit
        # A mutation may be harmless (e.g. hex-case in the CRC prefix) but
        # must never validate into a *different* body.
        assert crc_unframe(bytes(line)) in (None, body)

    def test_newline_in_body_rejected(self):
        with pytest.raises(ValueError, match="newline"):
            crc_frame(b"two\nlines")

    @pytest.mark.parametrize(
        "line",
        [b"", b"\n", b"0123\n", b"0123456x payload\n", b"0123456789\n", b"00000000 body"],
    )
    def test_malformed_frames_return_none(self, line):
        assert crc_unframe(line) is None

    @given(
        st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=64.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.one_of(st.none(), st.text(min_size=1, max_size=20)),
    )
    def test_journal_record_codec_round_trips(self, volume, weight, delta, now, key):
        record = JournalSubmit(
            task_id="t1", volume=volume, weight=weight, delta=delta, now=now,
            idempotency_key=key,
        )
        # Through JSON, as the journal stores it: floats must survive exactly
        # (repr round-trips IEEE doubles).
        wire = json.loads(json.dumps(JOURNAL_REGISTRY.encode(record)))
        assert JOURNAL_REGISTRY.decode(wire) == record


# ---------------------------------------------------------------------------
# The write-ahead log
# ---------------------------------------------------------------------------


def _submit(i: int, key: "str | None" = None) -> JournalSubmit:
    return JournalSubmit(
        task_id=f"t{i}", volume=1.0 + i, weight=1.0, delta=2.0, now=float(i),
        idempotency_key=key,
    )


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        with Journal(tmp_path) as journal:
            for i in range(5):
                assert journal.append(_submit(i)) == i + 1
            journal.append(JournalCancel(task_id="t2", now=7.0))
        with Journal(tmp_path) as journal:
            replayed = list(journal.replay())
        assert [seq for seq, _ in replayed] == list(range(1, 7))
        assert replayed[0][1] == _submit(0)
        assert replayed[-1][1] == JournalCancel(task_id="t2", now=7.0)

    def test_replay_after_seq_skips_the_prefix(self, tmp_path):
        with Journal(tmp_path) as journal:
            for i in range(6):
                journal.append(_submit(i))
            assert [seq for seq, _ in journal.replay(after_seq=4)] == [5, 6]

    def test_reopen_resumes_sequence_numbers(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_submit(0))
        with Journal(tmp_path) as journal:
            assert journal.last_seq == 1
            assert journal.append(_submit(1)) == 2

    def test_rotation_and_compaction(self, tmp_path):
        with Journal(tmp_path, segment_bytes=1) as journal:  # one record per segment
            for i in range(4):
                journal.append(_submit(i))
            assert len(journal.segment_paths()) == 4
            assert [seq for seq, _ in journal.replay()] == [1, 2, 3, 4]
            # Seqs 1-2 are covered: their segments go; 3 is covered but its
            # successor starts at 4 > 2+1, so it must stay.
            assert journal.compact(upto_seq=2) == 2
            assert [seq for seq, _ in journal.replay()] == [3, 4]
            # The active segment survives even when fully covered.
            assert journal.compact(upto_seq=10) == 1
            assert [seq for seq, _ in journal.replay()] == [4]

    def test_truncation_at_every_byte_offset_of_the_tail(self, tmp_path):
        """Crash-point sweep: cut the tail file at every offset.

        Whatever the cut point, reopening must recover exactly the records
        whose final newline made it to disk — acknowledged records survive,
        the torn one vanishes, and appends continue from the right seq.
        """
        reference = tmp_path / "ref"
        with Journal(reference) as journal:
            for i in range(3):
                journal.append(_submit(i, key=f"k{i}"))
        (segment,) = Journal(reference).segment_paths()
        data = segment.read_bytes()
        boundaries = [0]
        offset = 0
        while offset < len(data):
            offset = data.index(b"\n", offset) + 1
            boundaries.append(offset)
        assert len(boundaries) == 4  # 3 records
        for cut in range(len(data) + 1):
            work = tmp_path / f"cut{cut}"
            shutil.copytree(reference, work)
            (tail,) = [p for p in work.iterdir() if p.suffix == ".wal"]
            with open(tail, "rb+") as handle:
                handle.truncate(cut)
            with Journal(work) as journal:
                survivors = sum(1 for boundary in boundaries[1:] if boundary <= cut)
                assert journal.truncated_bytes == cut - boundaries[survivors]
                assert [s for s, _ in journal.replay()] == list(range(1, survivors + 1))
                assert journal.append(_submit(9)) == survivors + 1
            shutil.rmtree(work)

    def test_garbage_tail_is_truncated_and_overwritten(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_submit(0))
        (segment,) = Journal(tmp_path).segment_paths()
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef partial")
        with Journal(tmp_path) as journal:
            assert journal.truncated_bytes == len(b"\xde\xad\xbe\xef partial")
            assert journal.last_seq == 1
            journal.append(_submit(1))
            assert [s for s, _ in journal.replay()] == [1, 2]

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        with Journal(tmp_path, segment_bytes=1) as journal:
            for i in range(3):
                journal.append(_submit(i))
        first = Journal(tmp_path).segment_paths()[0]
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError, match="sealed segment"):
            list(Journal(tmp_path).replay())

    def test_sequence_gap_raises(self, tmp_path):
        with Journal(tmp_path, segment_bytes=1) as journal:
            for i in range(3):
                journal.append(_submit(i))
        middle = Journal(tmp_path).segment_paths()[1]
        middle.unlink()
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            list(Journal(tmp_path).replay())

    @pytest.mark.parametrize(
        "kwargs",
        [{"fsync": "sometimes"}, {"fsync_interval": 0.0}, {"segment_bytes": 0}],
    )
    def test_invalid_knobs_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            Journal(tmp_path, **kwargs)

    @pytest.mark.parametrize("fsync", ["always", "interval", "off"])
    def test_every_fsync_policy_writes_identical_bytes(self, tmp_path, fsync):
        directory = tmp_path / fsync
        with Journal(directory, fsync=fsync) as journal:
            for i in range(3):
                journal.append(_submit(i))
        (segment,) = Journal(directory).segment_paths()
        baseline = tmp_path / "baseline"
        with Journal(baseline, fsync="off") as journal:
            for i in range(3):
                journal.append(_submit(i))
        assert segment.read_bytes() == Journal(baseline).segment_paths()[0].read_bytes()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class TestSnapshotStore:
    def test_write_read_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.write(7, {"state": {"x": 1.5}, "rejected": 2})
        payload = SnapshotStore.read(path)
        assert payload == {"seq": 7, "state": {"x": 1.5}, "rejected": 2}

    def test_keeps_only_the_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3):
            store.write(seq, {"state": {}})
        assert [SnapshotStore.read(p)["seq"] for p in store.paths()] == [2, 3]

    def test_corrupt_latest_falls_back_to_predecessor(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write(1, {"state": {"good": True}})
        latest = store.write(2, {"state": {}})
        latest.write_bytes(b"00000000 not-the-right-checksum\n")
        payload = store.load_latest()
        assert payload is not None and payload["seq"] == 1

    def test_no_valid_snapshot_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load_latest() is None
        store.write(1, {"state": {}})
        for path in store.paths():
            path.write_bytes(b"torn")
        assert store.load_latest() is None


class TestIdempotencyTable:
    def test_lru_eviction(self):
        table = IdempotencyTable(capacity=2)
        table.put("a", 1)
        table.put("b", 2)
        assert table.get("a") == 1  # refreshes 'a'
        table.put("c", 3)  # evicts 'b', the least recently used
        assert table.get("b") is None
        assert table.get("a") == 1 and table.get("c") == 3
        assert len(table) == 2

    def test_encode_load_round_trip(self):
        table = IdempotencyTable()
        reply = SubmitReply(task_id="t1", now=2.0, share=4.0, live_tasks=1)
        table.put("key", reply)
        restored = IdempotencyTable()
        restored.load(json.loads(json.dumps(table.encode())))
        assert restored.get("key") == reply

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            IdempotencyTable(capacity=0)


# ---------------------------------------------------------------------------
# State snapshot round-trip + recovery equivalence
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1,
    max_size=30,
)


def _apply(state: LiveSystemState, ops, on_op=None) -> "list[tuple]":
    """Run an op list; returns the resolved (replayable) operations.

    ``on_op(state, resolved_op)`` fires after each applied operation — the
    hook the durability tests use to journal apply-by-apply, exactly as the
    live server interleaves them.
    """
    now = 0.0
    submitted: "list[str]" = []
    resolved = []
    for op in ops:
        if op[0] == "submit":
            _, volume, weight, delta, dt = op
            now += dt
            record = state.submit(volume, weight, delta, now=now)
            submitted.append(record.task_id)
            resolved.append(("submit", record.task_id, volume, weight, delta, now))
        else:
            _, index = op
            if not submitted:
                continue
            task_id = submitted[index % len(submitted)]
            now += 0.05
            state.cancel(task_id, now=now)
            resolved.append(("cancel", task_id, now))
        if on_op is not None:
            on_op(state, resolved[-1])
    return resolved


def _replay(resolved, P=8.0) -> LiveSystemState:
    state = LiveSystemState(P=P)
    for op in resolved:
        if op[0] == "submit":
            _, task_id, volume, weight, delta, now = op
            state.submit(volume, weight, delta, now=now, task_id=task_id)
        else:
            state.cancel(op[1], now=op[2])
    return state


class TestStateSnapshot:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_ops)
    def test_to_from_snapshot_is_bit_exact(self, ops):
        state = LiveSystemState(P=8.0)
        _apply(state, ops)
        restored = LiveSystemState.from_snapshot(json.loads(json.dumps(state.to_snapshot())))
        assert restored.to_snapshot() == state.to_snapshot()
        # And the restored state *continues* identically.
        for live in (state, restored):
            live.submit(2.5, 1.5, 2.0, now=live.now + 1.0)
        assert restored.to_snapshot() == state.to_snapshot()

    def test_snapshot_config_mismatch_refused(self, tmp_path):
        durability = ServiceDurability(tmp_path, snapshot_every=1)
        state = LiveSystemState(P=8.0)
        record = state.submit(1.0, 1.0, 1.0, now=0.0)
        durability.record_submit(record, None)
        durability.note_applied(state, IdempotencyTable(), 0)
        durability.close()
        fresh = ServiceDurability(tmp_path)
        with pytest.raises(ValueError, match="refusing to replay"):
            fresh.recover(P=16.0, policy="wdeq", atol=1e-10, kernel="auto")


class TestRecovery:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_ops, st.integers(min_value=1, max_value=7))
    def test_snapshot_plus_suffix_equals_full_replay(self, tmp_path_factory, ops, every):
        tmp_path = tmp_path_factory.mktemp("recovery")
        durability = ServiceDurability(tmp_path, snapshot_every=every, fsync="off")

        def journal_op(live, op):
            if op[0] == "submit":
                durability.record_submit(live.records[op[1]], None)
            else:
                durability.record_cancel(op[1], op[2], None)
            durability.note_applied(live, IdempotencyTable(), 0)

        state = LiveSystemState(P=8.0)
        resolved = _apply(state, ops, on_op=journal_op)
        recovered = durability.recover(P=8.0, policy="wdeq", atol=1e-10, kernel="auto")
        durability.close()
        assert recovered.state.to_snapshot() == state.to_snapshot()
        assert recovered.state.to_snapshot() == _replay(resolved).to_snapshot()

    def test_recovery_rebuilds_idempotency_from_the_suffix(self, tmp_path):
        journal = Journal(tmp_path)
        state = LiveSystemState(P=8.0)
        record = state.submit(2.0, 1.0, 1.0, now=0.5)
        journal.append(
            JournalSubmit(
                task_id=record.task_id, volume=2.0, weight=1.0, delta=1.0, now=0.5,
                idempotency_key="retry-me",
            )
        )
        journal.close()
        result = recover_state(Journal(tmp_path), SnapshotStore(tmp_path), P=8.0)
        assert result.recovered_events == 1
        reply = decode_message(result.idempotency["retry-me"])
        assert isinstance(reply, SubmitReply) and reply.task_id == record.task_id
        assert reply.share == pytest.approx(state.share_of(record.task_id))

    def test_empty_directory_recovers_fresh_state(self, tmp_path):
        result = recover_state(Journal(tmp_path), SnapshotStore(tmp_path), P=4.0)
        assert result.recovered_events == 0
        assert result.snapshot_seq == 0
        assert result.state.live_count == 0
        assert result.state.P == 4.0

    @staticmethod
    def _compacted_durability(tmp_path) -> "tuple[ServiceDurability, LiveSystemState]":
        """13 journaled submits, one record per segment, snapshots at 4/8/12.

        With ``keep=2`` the retained snapshots cover seqs 8 and 12, so
        compaction (keyed to the oldest retained snapshot) has removed the
        segments for seqs 1..8 — records 9..13 remain on disk.
        """
        durability = ServiceDurability(
            tmp_path, snapshot_every=4, segment_bytes=1, fsync="off"
        )
        state = LiveSystemState(P=8.0)
        for i in range(13):
            record = state.submit(1.0 + i, 1.0, 1.0, now=float(i))
            durability.record_submit(record, None)
            durability.note_applied(state, IdempotencyTable(), 0)
        durability.close()
        assert [s for s, _ in Journal(tmp_path).replay()] == list(range(9, 14))
        return durability, state

    def test_fallback_snapshot_still_has_its_complete_suffix(self, tmp_path):
        """Compaction must never orphan a *retained* snapshot.

        Corrupting the newest snapshot forces recovery onto the older one —
        whose longer journal suffix must still be on disk in full.
        """
        _, state = self._compacted_durability(tmp_path)
        store = SnapshotStore(tmp_path)
        newest = store.paths()[-1]
        newest.write_bytes(b"00000000 not-the-right-checksum\n")
        result = recover_state(Journal(tmp_path), store, P=8.0)
        assert result.snapshot_seq == 8
        assert result.recovered_events == 5  # seqs 9..13
        assert result.state.to_snapshot() == state.to_snapshot()

    def test_recovery_refuses_a_suffix_that_cannot_reach_its_snapshot(self, tmp_path):
        """Every snapshot gone + a compacted prefix = an unfillable hole.

        Replaying seqs 9..13 onto a fresh state would silently serve a
        diverged system; recovery must stop loudly instead.
        """
        self._compacted_durability(tmp_path)
        store = SnapshotStore(tmp_path)
        for path in store.paths():
            path.unlink()
        with pytest.raises(JournalCorruptError, match="recovery gap"):
            recover_state(Journal(tmp_path), store, P=8.0)


# ---------------------------------------------------------------------------
# Inspection
# ---------------------------------------------------------------------------


class TestInspect:
    def test_report_counts_segments_snapshots_and_torn_tail(self, tmp_path):
        durability = ServiceDurability(tmp_path, snapshot_every=2, fsync="off")
        state = LiveSystemState(P=8.0)
        for i in range(5):
            record = state.submit(1.0 + i, 1.0, 1.0, now=float(i))
            durability.record_submit(record, None)
            durability.note_applied(state, IdempotencyTable(), 0)
        durability.close()
        (tail,) = durability.journal.segment_paths()
        with open(tail, "ab") as handle:
            handle.write(b"halfway-through-a-rec")
        report = inspect_journal(tmp_path, verify=True, tail=2)
        assert report["records"] == 5
        assert report["last_seq"] == 5
        assert report["torn_tail_bytes"] == len(b"halfway-through-a-rec")
        assert [s["valid"] for s in report["snapshots"]] == [True, True]
        assert [r["seq"] for r in report["tail"]] == [4, 5]
        # Inspection never mutates: the torn bytes are still on disk.
        assert inspect_journal(tmp_path)["torn_tail_bytes"] == report["torn_tail_bytes"]

    def test_missing_directory_reports_error(self, tmp_path):
        report = inspect_journal(tmp_path / "nowhere")
        assert report["error"] == "not a directory"
