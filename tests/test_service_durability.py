"""Durability tests: journal-backed restart, typed transport failures, chaos.

Three layers:

* **In-process restart** — drive :meth:`SchedulerService.handle` against a
  journal directory, tear the service down (cleanly or by abandoning the
  durability layer mid-flight), build a fresh service on the same directory
  and demand a *bit-exact* state snapshot: recovery is snapshot + journal
  replay through the same incremental engine, so nothing may drift.
* **Client failure modes** — every way a connection can die (refused,
  reset while sending, EOF before a full reply) must surface as
  :class:`ServiceUnavailable` with the right ``phase`` / ``retry_safe``,
  and keyed mutations must ride the retry loop to exactly-once delivery.
* **Chaos** (``-m chaos``) — a real ``serve`` subprocess SIGKILLed under
  client traffic and restarted on the same port from the same journal;
  the recovered trajectory must match a local reference replay of the
  acknowledged operations.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import (
    CancelTask,
    ErrorReply,
    HealthRequest,
    MetricsRequest,
    QueryState,
    SubmitTask,
)
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.state import LiveSystemState
from tests.chaos import ServerProcess, free_port


def run(coro):
    """Drive one async test body to completion on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30.0))


def _durable(journal_dir, **overrides) -> SchedulerService:
    defaults = dict(
        port=0,
        P=4.0,
        virtual_time=True,
        journal_dir=str(journal_dir),
        fsync="off",
    )
    defaults.update(overrides)
    return SchedulerService(ServiceConfig(**defaults))


def _submit(service: SchedulerService, i: int, now: float, key: "str | None" = None):
    reply = service.handle(
        SubmitTask(
            volume=1.0 + 0.25 * i,
            weight=1.0 + (i % 3),
            delta=0.5 + 0.5 * (i % 4),
            now=now,
            idempotency_key=key,
        )
    )
    assert type(reply).__name__ != "ErrorReply", reply
    return reply


# --------------------------------------------------------------------- #
# In-process restart: recovery must reproduce the live state exactly
# --------------------------------------------------------------------- #


class TestDurableRestart:
    def test_clean_shutdown_then_restart_is_bit_exact(self, tmp_path):
        first = _durable(tmp_path)
        for i in range(12):
            _submit(first, i, now=0.2 * i)
        first.handle(CancelTask(task_id="t3", now=2.5))
        before = first.state.to_snapshot()
        first.close()  # writes a final snapshot: restart replays nothing

        second = _durable(tmp_path)
        assert second.state.to_snapshot() == before
        assert second.recovered_events == 0  # snapshot covered everything
        health = second.handle(HealthRequest())
        assert health.durable and health.recovery_seconds >= 0.0
        second.close()

    def test_crash_replays_the_journal_suffix(self, tmp_path):
        first = _durable(tmp_path, snapshot_every=5)
        for i in range(13):
            _submit(first, i, now=0.2 * i)
        first.handle(CancelTask(task_id="t7", now=2.8))
        before = first.state.to_snapshot()
        # Crash: abandon the service without the final close() snapshot.
        first.durability.close()

        second = _durable(tmp_path, snapshot_every=5)
        assert second.state.to_snapshot() == before
        # 14 journaled records, snapshots every 5: the suffix is non-empty
        # but shorter than a full replay.
        assert 0 < second.recovered_events < 14
        second.close()

    def test_keyed_retry_across_restart_applies_exactly_once(self, tmp_path):
        first = _durable(tmp_path)
        original = _submit(first, 0, now=0.0, key="retry-1")
        first.durability.close()  # crash before the reply reached the client

        second = _durable(tmp_path)
        retried = _submit(second, 0, now=0.0, key="retry-1")
        assert retried.deduplicated
        assert retried.task_id == original.task_id
        assert second.state.submitted == 1
        # An unkeyed duplicate of the same payload is a *new* task.
        fresh = _submit(second, 0, now=0.0)
        assert fresh.task_id != original.task_id and second.state.submitted == 2
        second.close()

    def test_torn_tail_is_truncated_and_the_acked_prefix_survives(self, tmp_path):
        first = _durable(tmp_path)
        for i in range(6):
            _submit(first, i, now=0.3 * i)
        before = first.state.to_snapshot()
        first.durability.close()

        # SIGKILL mid-append: the tail record is half a frame.  Nothing
        # past the last full line was ever acknowledged.
        tail = sorted(tmp_path.glob("journal-*.wal"))[-1]
        with open(tail, "ab") as handle:
            handle.write(b'deadbeef {"seq": 7, "type": "subm')

        second = _durable(tmp_path)
        assert second.state.to_snapshot() == before
        assert second.durability.last_recovery.truncated_bytes > 0
        # The journal stays appendable after truncation.
        _submit(second, 6, now=2.0)
        assert second.state.submitted == 7
        second.close()

    def test_keyed_retry_when_the_request_itself_triggered_the_snapshot(self, tmp_path):
        """The record that trips the snapshot cadence must have its key in it.

        With ``snapshot_every=1`` the very submit being journaled causes the
        snapshot; recovery then replays *nothing* past it, so the snapshot's
        embedded idempotency table is the only place the key can live.
        """
        first = _durable(tmp_path, snapshot_every=1)
        original = _submit(first, 0, now=0.0, key="boundary")
        assert first.durability.snapshots_written == 1
        first.durability.close()  # crash after the ack

        second = _durable(tmp_path, snapshot_every=1)
        assert second.recovered_events == 0  # the snapshot covered everything
        retried = _submit(second, 0, now=0.0, key="boundary")
        assert retried.deduplicated
        assert retried.task_id == original.task_id
        assert second.state.submitted == 1
        second.close()

    def test_cancel_key_survives_a_snapshot_it_triggered(self, tmp_path):
        first = _durable(tmp_path, snapshot_every=2)
        _submit(first, 0, now=0.0)  # seq 1
        cancel = first.handle(
            CancelTask(task_id="t0", now=0.1, idempotency_key="c-boundary")
        )  # seq 2: triggers the snapshot
        assert cancel.cancelled
        first.durability.close()

        second = _durable(tmp_path, snapshot_every=2)
        retried = second.handle(
            CancelTask(task_id="t0", now=0.1, idempotency_key="c-boundary")
        )
        assert retried.cancelled and retried.status == "cancelled"
        assert second.state.cancelled == 1
        second.close()

    def test_journal_append_failure_is_fail_stop_for_mutations(
        self, tmp_path, monkeypatch
    ):
        service = _durable(tmp_path)
        _submit(service, 0, now=0.0)

        def broken_append(record):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(service.durability.journal, "append", broken_append)
        doomed = service.handle(
            SubmitTask(volume=1.0, now=0.1, idempotency_key="doomed")
        )
        assert isinstance(doomed, ErrorReply) and doomed.code == "journal_failed"
        assert service.journal_failed
        # The unbacked ack was never stored: a retry is refused, never
        # answered from the idempotency table, and applies nothing.
        retry = service.handle(
            SubmitTask(volume=1.0, now=0.1, idempotency_key="doomed")
        )
        assert isinstance(retry, ErrorReply) and retry.code == "journal_failed"
        assert service.handle(
            CancelTask(task_id="t0", now=0.2, idempotency_key="c1")
        ).code == "journal_failed"
        # Reads keep working while the server drains.
        assert service.handle(HealthRequest()).live_tasks >= 0
        gauges = service.handle(MetricsRequest()).metrics["gauges"]
        assert gauges["journal_failed"] == 1.0
        service.durability.close()

        # Restart recovers exactly the journaled (= acknowledged) prefix:
        # the ghost task that failed to journal is gone.
        second = _durable(tmp_path)
        assert second.state.submitted == 1
        assert second.handle(QueryState(now=0.2)).submitted == 1
        second.close()

    def test_idempotency_keys_are_scoped_per_client(self, tmp_path):
        service = _durable(tmp_path)
        a = service.handle(
            SubmitTask(volume=1.0, now=0.0, client="alice", idempotency_key="k1")
        )
        b = service.handle(
            SubmitTask(volume=2.0, now=0.1, client="bob", idempotency_key="k1")
        )
        # Two clients reusing a key are two tasks, not one stored reply.
        assert a.task_id != b.task_id
        assert service.state.submitted == 2
        again = service.handle(
            SubmitTask(volume=1.0, now=0.2, client="alice", idempotency_key="k1")
        )
        assert again.deduplicated and again.task_id == a.task_id
        service.durability.close()

        # The *scoped* key is what gets journaled, so the namespace
        # survives recovery too.
        second = _durable(tmp_path)
        retried = second.handle(
            SubmitTask(volume=2.0, now=0.3, client="bob", idempotency_key="k1")
        )
        assert retried.deduplicated and retried.task_id == b.task_id
        assert second.state.submitted == 2
        second.close()

    def test_snapshot_config_mismatch_is_refused(self, tmp_path):
        first = _durable(tmp_path, snapshot_every=1)
        _submit(first, 0, now=0.0)
        first.close()
        with pytest.raises(ValueError, match="refusing to replay"):
            _durable(tmp_path, P=16.0)

    def test_durability_metrics_are_exposed(self, tmp_path):
        service = _durable(tmp_path, snapshot_every=2)
        for i in range(5):
            _submit(service, i, now=0.1 * i, key=f"m-{i}")
        _submit(service, 0, now=0.4, key="m-0")  # deduplicated

        payload = service.handle(MetricsRequest()).metrics
        assert payload["counters"]["journal_records_total"] == 5.0
        assert payload["counters"]["idempotent_hits_total"] == 1.0
        gauges = payload["gauges"]
        assert gauges["journal_bytes"] > 0
        assert gauges["journal_segments"] >= 1
        assert gauges["journal_last_seq"] == 5.0
        assert gauges["snapshots_written"] >= 2
        assert gauges["idempotency_entries"] == 5.0
        assert gauges["recovered_events"] == 0.0
        service.close()

        second = _durable(tmp_path, snapshot_every=2)
        gauges = second.handle(MetricsRequest()).metrics["gauges"]
        assert gauges["recovery_seconds"] >= 0.0
        second.close()


# --------------------------------------------------------------------- #
# Client failure modes: typed ServiceUnavailable per transport phase
# --------------------------------------------------------------------- #


class _running_service:
    """Async context manager: a started service on an ephemeral port."""

    def __init__(self, **overrides):
        self.service = SchedulerService(ServiceConfig(port=0, **overrides))

    async def __aenter__(self) -> SchedulerService:
        await self.service.start()
        return self.service

    async def __aexit__(self, *exc_info: object) -> None:
        await self.service.shutdown()


class _BrokenWriter:
    """A writer whose drain() dies with a reset, as a dropped peer would."""

    def __init__(self, writer):
        self._writer = writer

    def write(self, data: bytes) -> None:
        pass

    async def drain(self) -> None:
        raise ConnectionResetError("peer dropped mid-send")

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()


class TestClientFailureModes:
    def test_connection_refused_is_connect_phase_and_retry_safe(self):
        async def body():
            client = ServiceClient("127.0.0.1", free_port())
            with pytest.raises(ServiceUnavailable) as excinfo:
                await client.request(HealthRequest())
            assert excinfo.value.phase == "connect"
            assert excinfo.value.retry_safe
            assert client.stats["unavailable"] == 1

        run(body())

    def test_eof_before_reply_is_reply_phase_and_not_retry_safe(self):
        async def body():
            async def eat_and_close(reader, writer):
                await reader.readline()
                writer.close()

            server = await asyncio.start_server(eat_and_close, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = ServiceClient("127.0.0.1", port)
                with pytest.raises(ServiceUnavailable) as excinfo:
                    await client.request(QueryState())
                assert excinfo.value.phase == "reply"
                assert not excinfo.value.retry_safe
            finally:
                server.close()
                await server.wait_closed()

        run(body())

    def test_unkeyed_mutation_is_not_blindly_retried_after_reply_loss(self):
        async def body():
            async def eat_and_close(reader, writer):
                await reader.readline()
                writer.close()

            server = await asyncio.start_server(eat_and_close, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = ServiceClient("127.0.0.1", port, retries=3)
                # An explicit None key defeats the automatic keying, leaving
                # a mutation whose reply-phase loss must NOT be retried.
                with pytest.raises(ServiceUnavailable):
                    await client.request(SubmitTask(volume=1.0))
                assert client.stats["retries"] == 0
                assert client.stats["unavailable"] == 1
            finally:
                server.close()
                await server.wait_closed()

        run(body())

    def test_send_failure_is_send_phase(self):
        async def body():
            async with _running_service(virtual_time=True) as service:
                host, port = service.address
                client = ServiceClient(host, port)
                await client.connect()
                client._writer = _BrokenWriter(client._writer)
                with pytest.raises(ServiceUnavailable) as excinfo:
                    await client.request(HealthRequest())
                assert excinfo.value.phase == "send"
                assert not excinfo.value.retry_safe
                await client.close()

        run(body())

    def test_read_only_request_is_retried_after_reply_loss(self):
        async def body():
            connections = {"count": 0}

            async def flaky(reader, writer):
                connections["count"] += 1
                await reader.readline()
                if connections["count"] == 1:
                    writer.close()  # EOF before the reply
                    return
                reply = {
                    "type": "state_reply",
                    "now": 1.0,
                    "live_tasks": 1,
                    "submitted": 1,
                    "completed": 0,
                    "cancelled": 0,
                    "rejected": 0,
                }
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(flaky, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = ServiceClient(
                    "127.0.0.1", port, retries=3, backoff=0.01, backoff_max=0.05
                )
                # Queries have no server-side effects, so a reply-phase loss
                # is retried even without an idempotency key.
                state = await client.state()
                assert state.submitted == 1
                assert client.stats["retries"] == 1
            finally:
                server.close()
                await server.wait_closed()

        run(body())

    def test_keyed_mutation_retries_through_a_flaky_server(self):
        async def body():
            connections = {"count": 0}

            async def flaky(reader, writer):
                connections["count"] += 1
                line = await reader.readline()
                if connections["count"] == 1:
                    writer.close()  # EOF before the reply: not retry-safe
                    return
                request = json.loads(line)
                reply = {
                    "type": "submit_reply",
                    "task_id": "t0",
                    "now": 0.0,
                    "share": 1.0,
                    "live_tasks": 1,
                    "deduplicated": connections["count"] > 2,
                }
                assert request["idempotency_key"]  # auto-keyed by the client
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(flaky, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = ServiceClient(
                    "127.0.0.1", port, retries=4, backoff=0.01, backoff_max=0.05
                )
                reply = await client.submit(volume=1.0)
                assert reply.task_id == "t0"
                assert client.stats["retries"] == 1
                assert client.stats["unavailable"] == 1
                assert client.stats["deduplicated"] == 0
            finally:
                server.close()
                await server.wait_closed()

        run(body())

    def test_retry_knob_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("h", 1, retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient("h", 1, backoff=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient("h", 1, backoff=1.0, backoff_max=0.5)


# --------------------------------------------------------------------- #
# Chaos: SIGKILL a real serve subprocess under traffic, restart, compare
# --------------------------------------------------------------------- #


def _reference_ops(count: int):
    """The deterministic keyed workload both the client and the oracle run."""
    ops = []
    for i in range(count):
        ops.append(
            (
                "submit",
                dict(
                    volume=0.5 + 0.3 * (i % 7),
                    weight=1.0 + (i % 3),
                    delta=0.5 + 0.5 * (i % 4),
                    task_id=f"job{i}",
                    now=round(0.1 * i, 3),
                ),
            )
        )
        if i >= 10 and i % 15 == 0:
            ops.append(("cancel", dict(task_id=f"job{i - 10}", now=round(0.1 * i + 0.05, 3))))
    return ops


@pytest.mark.chaos
class TestCrashRecoveryChaos:
    def test_sigkill_midstream_matches_reference_replay(self, tmp_path):
        """Kill + restart mid-run; keyed retries make the run exactly-once.

        With ``--virtual-time`` the final state is a pure function of the
        applied operations, so whatever instant the SIGKILL lands, the
        recovered trajectory must equal a local replay of all of them.
        """
        P = 4.0
        ops = _reference_ops(40)
        # Acks before the SIGKILL lands — deliberately NOT a multiple of the
        # snapshot cadence, so recovery must replay a non-empty suffix.
        kill_after = 16

        async def body(server: ServerProcess):
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retries=100,
                backoff=0.02,
                backoff_max=0.25,
                seed=7,
            )
            restart = None
            try:
                for index, (kind, kwargs) in enumerate(ops):
                    if kind == "submit":
                        reply = await client.submit(
                            **kwargs, idempotency_key=f"k{index}"
                        )
                        assert reply.task_id == kwargs["task_id"]
                    else:
                        await client.cancel(**kwargs, idempotency_key=f"k{index}")
                    if index + 1 == kill_after:
                        await asyncio.to_thread(server.kill)
                        # Restart concurrently: the next requests bridge the
                        # outage on the retry loop.
                        restart = asyncio.create_task(asyncio.to_thread(server.start))
                if restart is not None:
                    await restart

                reference = LiveSystemState(P=P)
                for kind, kwargs in ops:
                    getattr(reference, kind)(**kwargs)
                final_now = max(kwargs["now"] for _, kwargs in ops) + 5.0
                reference.advance_to(final_now)

                state = await client.state(now=final_now)
                assert state.submitted == reference.submitted
                assert state.cancelled == reference.cancelled
                assert state.completed == reference.completed
                for task_id, record in reference.records.items():
                    share = await client.share(task_id, now=final_now)
                    assert share.status == record.status, task_id
                    if record.completion_time is None:
                        assert share.completion_time is None
                    else:
                        assert share.completion_time == pytest.approx(
                            record.completion_time, abs=1e-9
                        )
                health = await client.health()
                assert health.durable and health.recovered_events > 0
                assert client.stats["retries"] > 0
            finally:
                await client.close()

        with ServerProcess(
            tmp_path, extra_args=("-P", str(P), "--snapshot-every", "7", "--fsync", "off")
        ) as server:
            run(body(server))

    def test_kill_with_request_in_flight_is_exactly_once(self, tmp_path):
        async def body(server: ServerProcess):
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retries=100,
                backoff=0.02,
                backoff_max=0.25,
                seed=11,
            )
            try:
                for i in range(5):
                    await client.submit(volume=1.0, task_id=f"pre{i}", now=0.1 * i)
                in_flight = asyncio.create_task(
                    client.submit(
                        volume=2.0, task_id="inflight", now=1.0,
                        idempotency_key="inflight-key",
                    )
                )
                await asyncio.sleep(0)  # let the request hit the wire
                await asyncio.to_thread(server.kill)
                await asyncio.to_thread(server.start)
                reply = await in_flight  # the retry loop resolves it
                assert reply.task_id == "inflight"

                # A second retry of the same key after the restart is served
                # from the recovered idempotency table, not re-applied.
                again = await client.submit(
                    volume=2.0, task_id="inflight", now=1.0,
                    idempotency_key="inflight-key",
                )
                assert again.deduplicated and again.task_id == "inflight"
                assert (await client.state(now=1.0)).submitted == 6
                with pytest.raises(ServiceError) as excinfo:
                    await client.submit(volume=2.0, task_id="inflight", now=1.0)
                assert excinfo.value.code == "duplicate_task"
            finally:
                await client.close()

        with ServerProcess(tmp_path, extra_args=("--fsync", "off")) as server:
            run(body(server))
