"""Tests for the workload generators and suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    WORKLOAD_SUITES,
    bandwidth_scenario_instances,
    cluster_instances,
    constant_weight_instances,
    constant_weight_volume_instances,
    get_suite,
    homogeneous_halfdelta_deltas,
    homogeneous_halfdelta_instances,
    large_delta_instances,
    uniform_instances,
)


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            uniform_instances,
            constant_weight_instances,
            constant_weight_volume_instances,
            large_delta_instances,
            homogeneous_halfdelta_instances,
            cluster_instances,
            bandwidth_scenario_instances,
        ],
    )
    def test_counts_and_sizes(self, generator):
        instances = list(generator(4, 3, rng=0))
        assert len(instances) == 3
        assert all(inst.n == 4 for inst in instances)

    def test_uniform_parameters_in_paper_ranges(self):
        for inst in uniform_instances(5, 5, P=1.0, rng=1):
            assert np.all(inst.volumes < 1.0)
            assert np.all(inst.weights < 1.0)
            assert np.all(inst.deltas < 1.0 + 1e-12)
            assert np.all(inst.volumes > 0) and np.all(inst.weights > 0)

    def test_constant_weight(self):
        for inst in constant_weight_instances(4, 3, rng=2):
            np.testing.assert_allclose(inst.weights, 1.0)

    def test_constant_weight_volume(self):
        for inst in constant_weight_volume_instances(4, 3, rng=3):
            np.testing.assert_allclose(inst.weights, 1.0)
            np.testing.assert_allclose(inst.volumes, 1.0)

    def test_large_delta_satisfies_theorem11_hypothesis(self):
        for inst in large_delta_instances(5, 5, P=1.0, rng=4):
            assert inst.has_large_deltas()
            assert inst.has_homogeneous_weights()

    def test_large_delta_heterogeneous_weights_option(self):
        instances = list(
            large_delta_instances(5, 3, P=1.0, homogeneous_weights=False, rng=4)
        )
        assert any(not inst.has_homogeneous_weights() for inst in instances)

    def test_homogeneous_deltas_in_range(self):
        for deltas in homogeneous_halfdelta_deltas(6, 4, rng=5):
            assert np.all(deltas >= 0.5) and np.all(deltas <= 1.0)

    def test_cluster_instances_shapes(self):
        for inst in cluster_instances(10, 2, P=64.0, rng=6):
            assert inst.P == 64.0
            assert np.all(inst.deltas <= 64.0)
            assert np.all(inst.deltas >= 1.0)

    def test_bandwidth_instances_have_names(self):
        inst = next(bandwidth_scenario_instances(3, 1, rng=7))
        assert inst[0].name == "worker1"

    def test_reproducibility(self):
        a = list(uniform_instances(4, 3, rng=42))
        b = list(uniform_instances(4, 3, rng=42))
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.volumes, y.volumes)
            np.testing.assert_allclose(x.deltas, y.deltas)

    def test_different_seeds_differ(self):
        a = next(uniform_instances(4, 1, rng=1))
        b = next(uniform_instances(4, 1, rng=2))
        assert not np.allclose(a.volumes, b.volumes)


class TestSuites:
    def test_all_suites_generate(self):
        for name, suite in WORKLOAD_SUITES.items():
            instances = list(suite.generate(n=suite.default_sizes[0], count=2, seed=0))
            assert len(instances) == 2, name

    def test_get_suite(self):
        suite = get_suite("conjecture12-uniform")
        assert suite.experiment == "E1"
        assert suite.paper_count == 10_000

    def test_get_suite_unknown(self):
        with pytest.raises(KeyError):
            get_suite("nope")

    def test_suite_generation_reproducible(self):
        suite = get_suite("cluster")
        a = [inst.volumes for inst in suite.generate(10, count=2, seed=3)]
        b = [inst.volumes for inst in suite.generate(10, count=2, seed=3)]
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)
