"""Unit tests for the lower bounds (repro.core.bounds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.bounds import (
    combined_lower_bound,
    height_bound,
    mixed_lower_bound,
    smith_rule_value,
    squashed_area_bound,
)
from repro.core.exceptions import InvalidInstanceError
from repro.algorithms.optimal import optimal_value
from tests.conftest import random_instance


class TestSmithRule:
    def test_single_task(self):
        assert smith_rule_value(2.0, np.array([4.0]), np.array([1.0])) == pytest.approx(2.0)

    def test_two_tasks_order_matters(self):
        # Smith order puts the (V=1, w=2) task first: 2*1 + 1*(1+4) = 7, /P=1.
        value = smith_rule_value(1.0, np.array([4.0, 1.0]), np.array([1.0, 2.0]))
        assert value == pytest.approx(2 * 1 + 1 * 5)

    def test_zero_weight_scheduled_last(self):
        value = smith_rule_value(1.0, np.array([5.0, 1.0]), np.array([0.0, 1.0]))
        # The weighted task completes at 1, the zero-weight one contributes 0.
        assert value == pytest.approx(1.0)

    def test_empty(self):
        assert smith_rule_value(1.0, np.array([]), np.array([])) == 0.0


class TestSquashedArea:
    def test_matches_manual_computation(self, uncapped_instance):
        # Volumes 3, 6, 1.5 weights 1, 2, 1, P = 3; Smith order: T1 (3), T2(... )
        # ratios: 3, 3, 1.5 -> order [2, 0, 1]; completions (1.5, 4.5, 10.5)/3.
        expected = (1 * 1.5 + 1 * 4.5 + 2 * 10.5) / 3
        assert squashed_area_bound(uncapped_instance) == pytest.approx(expected)

    def test_equals_optimal_when_uncapped(self, uncapped_instance):
        # With delta_i = P the problem reduces to single-machine WSPT, whose
        # optimum is exactly the squashed area bound.
        assert squashed_area_bound(uncapped_instance) == pytest.approx(
            optimal_value(uncapped_instance), rel=1e-6
        )

    def test_empty_instance(self):
        assert squashed_area_bound(Instance(P=1, tasks=[])) == 0.0


class TestHeightBound:
    def test_value(self, small_instance):
        expected = float(np.dot(small_instance.weights, small_instance.heights))
        assert height_bound(small_instance) == pytest.approx(expected)

    def test_empty_instance(self):
        assert height_bound(Instance(P=1, tasks=[])) == 0.0

    def test_equals_optimal_for_single_task(self):
        inst = Instance(P=4, tasks=[Task(volume=6, weight=2, delta=3)])
        assert height_bound(inst) == pytest.approx(optimal_value(inst))


class TestMixedBound:
    def test_extreme_fractions_recover_pure_bounds(self, small_instance):
        n = small_instance.n
        assert mixed_lower_bound(small_instance, np.ones(n)) == pytest.approx(
            squashed_area_bound(small_instance)
        )
        assert mixed_lower_bound(small_instance, np.zeros(n)) == pytest.approx(
            height_bound(small_instance)
        )

    def test_invalid_fraction_shape(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            mixed_lower_bound(small_instance, [0.5])

    def test_invalid_fraction_range(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            mixed_lower_bound(small_instance, [0.5, 0.5, 1.5, 0.5])

    def test_is_lower_bound_on_random_instances(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=3)
            opt = optimal_value(inst)
            for frac in (0.0, 0.3, 0.7, 1.0):
                bound = mixed_lower_bound(inst, np.full(inst.n, frac))
                assert bound <= opt * (1 + 1e-6) + 1e-9


class TestCombinedBound:
    def test_at_least_each_pure_bound(self, small_instance):
        combined = combined_lower_bound(small_instance)
        assert combined >= squashed_area_bound(small_instance) - 1e-12
        assert combined >= height_bound(small_instance) - 1e-12

    def test_still_a_lower_bound(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=4)
            assert combined_lower_bound(inst) <= optimal_value(inst) * (1 + 1e-6) + 1e-9

    def test_empty_instance(self):
        assert combined_lower_bound(Instance(P=1, tasks=[])) == 0.0
