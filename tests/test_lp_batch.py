"""Differential conformance tests for the batched LP subsystem (repro.lp.batch).

Every vectorized path is pinned against its scalar reference:

* :func:`repro.lp.simplex.solve_linear_program_batch` against
  :func:`repro.lp.simplex.solve_linear_program` on random LPs with mixed
  optimal / infeasible / unbounded outcomes and negative right-hand sides;
* :func:`repro.lp.batch.solve_ordered_relaxation_batch` (lockstep kernel
  *and* the scalar dispatch backends) against
  :func:`repro.lp.interface.solve_ordered_relaxation` per instance, on
  Hypothesis-generated ragged padded batches, including degenerate
  orderings far from optimal and single-task rows;
* :func:`repro.lp.optimal` against the brute-force
  :func:`repro.algorithms.optimal.optimal_value`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.optimal import optimal_value
from repro.batch.kernels import combined_lower_bound_batch, lower_bound_batch
from repro.core.batch import InstanceBatch
from repro.core.bounds import time_leq, times_close
from repro.core.exceptions import InvalidInstanceError, InvalidScheduleError, SolverError
from repro.core.instance import Instance, Task
from repro.core.validation import validate_column_schedule
from repro.exec import ExecutionContext
from repro.lp.batch import (
    build_ordered_lp_batch,
    normalize_orders,
    optimal,
    smith_orders_batch,
    solve_ordered_relaxation_batch,
)
from repro.lp.formulation import ordered_lp_dimensions, position_area_layout
from repro.lp.interface import solve_ordered_relaxation
from repro.lp.simplex import solve_linear_program, solve_linear_program_batch
from repro.batch.compiled import numba_available

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def instances(draw, min_tasks: int = 1, max_tasks: int = 5):
    """One random instance with well-conditioned parameters."""
    n = draw(st.integers(min_tasks, max_tasks))
    P = draw(st.floats(0.5, 4.0, **finite))
    tasks = []
    for _ in range(n):
        volume = draw(st.floats(0.05, 10.0, **finite))
        weight = draw(st.floats(0.05, 10.0, **finite))
        delta = draw(st.floats(0.05, 1.0, **finite)) * P
        tasks.append(Task(volume=volume, weight=weight, delta=delta))
    return Instance(P=P, tasks=tasks)


@st.composite
def instance_batches(draw, max_batch: int = 5):
    """A batch of random instances of *mixed* sizes (padding is exercised)."""
    return draw(st.lists(instances(), min_size=1, max_size=max_batch))


@st.composite
def batches_with_orders(draw, max_batch: int = 5):
    """Ragged batches plus an arbitrary (often degenerate) order per row."""
    insts = draw(instance_batches(max_batch=max_batch))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    orders = [list(map(int, rng.permutation(inst.n))) for inst in insts]
    return insts, orders


def assert_matches_scalar(insts, orders, solution, rtol=1e-6, atol=1e-8):
    """Row-by-row comparison of a batched solution against the scalar path."""
    by_task = solution.completion_times_by_task()
    for b, inst in enumerate(insts):
        ref = solve_ordered_relaxation(inst, orders[b], backend="scipy", build_schedule=False)
        assert times_close(solution.objectives[b], ref.objective, rtol=rtol, atol=atol)
        # Degenerate (zero-length) columns make individual end times
        # non-unique between solvers, so compare the sorted column end times,
        # which the weighted objective pins down per tied group.
        np.testing.assert_allclose(
            np.sort(solution.completion_times[b, : inst.n]),
            np.sort(ref.completion_times),
            rtol=1e-5,
            atol=1e-6,
        )
        assert np.all(np.diff(solution.completion_times[b, : inst.n]) >= -1e-7)
        # Padding slots never leak completion times.
        assert np.all(by_task[b, inst.n :] == 0.0)


# --------------------------------------------------------------------- #
# The lockstep simplex kernel
# --------------------------------------------------------------------- #


#: Kernel tiers exercised by the differential suites on this machine; the
#: compiled pivot driver must match the NumPy path exactly at float64.
KERNELS = ["numpy"] + (["compiled"] if numba_available() else [])


class TestBatchedSimplex:
    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 12))
    def test_matches_scalar_on_random_lps(self, kernel, seed, B):
        rng = np.random.default_rng(seed)
        nvar, m_ub, m_eq = 4, 3, 1
        c = rng.normal(size=(B, nvar))
        A_ub = rng.normal(size=(B, m_ub, nvar))
        b_ub = rng.uniform(-1.0, 2.0, size=(B, m_ub))  # mixed signs
        A_eq = rng.normal(size=(B, m_eq, nvar))
        b_eq = rng.uniform(-1.0, 1.0, size=(B, m_eq))
        batch = solve_linear_program_batch(c, A_ub, b_ub, A_eq, b_eq, kernel=kernel)
        for i in range(B):
            ref = solve_linear_program(c[i], A_ub[i], b_ub[i], A_eq[i], b_eq[i])
            assert batch.statuses[i] == ref.status
            if ref.status == "optimal":
                assert batch.objectives[i] == pytest.approx(ref.objective, rel=1e-6, abs=1e-7)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mixed_statuses_in_one_batch(self, kernel):
        # Problem 0: optimal; problem 1: infeasible; problem 2: unbounded.
        c = np.array([[1.0, 0.0], [1.0, 0.0], [-1.0, 0.0]])
        A_ub = np.array(
            [
                [[1.0, 1.0]],
                [[1.0, 0.0]],
                [[0.0, 1.0]],
            ]
        )
        b_ub = np.array([[1.0], [-1.0], [1.0]])
        A_eq = np.array([[[0.0, 0.0]], [[1.0, 0.0]], [[0.0, 0.0]]])
        b_eq = np.array([[0.0], [5.0], [0.0]])
        result = solve_linear_program_batch(c, A_ub, b_ub, A_eq, b_eq, kernel=kernel)
        assert list(result.statuses) == ["optimal", "infeasible", "unbounded"]
        assert result.objectives[0] == pytest.approx(0.0)
        assert np.isnan(result.objectives[1])
        assert result.objectives[2] == -np.inf
        assert not result.all_optimal

    def test_one_dimensional_cost_broadcasts(self):
        c = np.array([-1.0, -1.0])
        A_ub = np.tile(np.array([[[1.0, 1.0]]]), (3, 1, 1))
        b_ub = np.array([[1.0], [2.0], [3.0]])
        result = solve_linear_program_batch(c, A_ub, b_ub)
        np.testing.assert_allclose(result.objectives, [-1.0, -2.0, -3.0], atol=1e-9)

    def test_no_constraints_rejected(self):
        with pytest.raises(SolverError):
            solve_linear_program_batch(np.array([1.0]))

    def test_shape_mismatches_rejected(self):
        c = np.zeros((2, 3))
        with pytest.raises(SolverError):
            solve_linear_program_batch(c, A_ub=np.zeros((2, 1, 4)), b_ub=np.zeros((2, 1)))
        with pytest.raises(SolverError):
            solve_linear_program_batch(c, A_ub=np.zeros((2, 1, 3)), b_ub=np.zeros((2, 2)))

    def test_pivot_limit_raises(self):
        rng = np.random.default_rng(0)
        c = rng.normal(size=(2, 4))
        A_ub = rng.normal(size=(2, 3, 4))
        b_ub = rng.uniform(0.5, 1.0, size=(2, 3))
        with pytest.raises(SolverError):
            solve_linear_program_batch(c, A_ub, b_ub, max_iterations=1)


# --------------------------------------------------------------------- #
# Assembly and order normalisation
# --------------------------------------------------------------------- #


class TestAssembly:
    def test_dimensions_match_layout(self, small_instance):
        batch = InstanceBatch.from_instances([small_instance])
        lp = build_ordered_lp_batch(batch)
        nvar, m_ub, m_eq = ordered_lp_dimensions(batch.n_max)
        assert lp.c.shape == (1, nvar)
        assert lp.A_ub.shape == (1, m_ub, nvar)
        assert lp.A_eq.shape == (1, m_eq, nvar)
        assert np.all(lp.b_ub == 0.0)

    def test_objective_and_rhs_follow_order(self, small_instance):
        order = [2, 0, 3, 1]
        batch = InstanceBatch.from_instances([small_instance])
        lp = build_ordered_lp_batch(batch, [order])
        np.testing.assert_allclose(lp.c[0, :4], small_instance.weights[order])
        np.testing.assert_allclose(lp.b_eq[0], small_instance.volumes[order])

    def test_position_layout_covers_lower_triangle(self):
        x_index, pairs = position_area_layout(4)
        assert pairs.shape == (10, 2)
        assert np.all(pairs[:, 1] <= pairs[:, 0])
        assert x_index[0, 0] == 4 and x_index[3, 3] == 13
        assert x_index[0, 1] == -1  # j > p is not a variable

    def test_smith_orders_match_scalar(self):
        insts = [
            Instance.from_arrays(P=2.0, volumes=[3.0, 1.0, 2.0], weights=[1.0, 2.0, 1.0]),
            Instance.from_arrays(P=1.0, volumes=[1.0]),
        ]
        batch = InstanceBatch.from_instances(insts)
        orders = smith_orders_batch(batch)
        for b, inst in enumerate(insts):
            assert list(orders[b, : inst.n]) == inst.smith_order()
        # Padding slots trail every real task.
        assert list(orders[1]) == [0, 1, 2]

    def test_smith_orders_zero_weight_sorts_last_but_before_padding(self):
        inst = Instance(P=2.0, tasks=[Task(1.0, 0.0, 1.0), Task(5.0, 1.0, 1.0)])
        other = Instance(P=2.0, tasks=[Task(1.0, 1.0, 1.0)])
        batch = InstanceBatch.from_instances([inst, other])
        orders = smith_orders_batch(batch)
        assert list(orders[0]) == [1, 0]  # zero-weight task last among real tasks
        assert list(orders[1]) == [0, 1]  # padding after the real task

    def test_normalize_orders_pads_ragged_rows(self):
        batch = InstanceBatch.from_instances(
            [Instance.from_arrays(P=1.0, volumes=[1.0, 1.0, 1.0]), Instance.from_arrays(P=1.0, volumes=[1.0])]
        )
        orders = normalize_orders(batch, [[2, 0, 1], [0]])
        assert list(orders[0]) == [2, 0, 1]
        assert list(orders[1]) == [0, 1, 2]

    def test_normalize_orders_rejects_non_permutations(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0, 1.0])])
        with pytest.raises(InvalidScheduleError):
            normalize_orders(batch, [[0, 0]])
        with pytest.raises(InvalidScheduleError):
            normalize_orders(batch, [[0, 1], [1, 0]])  # wrong batch size

    def test_normalize_orders_rejects_wrong_length_rows(self):
        # A row whose length is neither the row's task count nor n_max must
        # raise the documented exception, not a raw numpy broadcast error.
        batch = InstanceBatch.from_instances(
            [Instance.from_arrays(P=1.0, volumes=[1.0, 1.0, 1.0]), Instance.from_arrays(P=1.0, volumes=[1.0])]
        )
        with pytest.raises(InvalidScheduleError):
            normalize_orders(batch, [[0, 1, 2], [0, 1]])

    def test_unknown_backend_rejected(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0])])
        with pytest.raises(SolverError):
            solve_ordered_relaxation_batch(batch, backend="bogus")


# --------------------------------------------------------------------- #
# Differential: batched ordered relaxation vs the scalar interface
# --------------------------------------------------------------------- #


class TestOrderedRelaxationDifferential:
    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=20, deadline=None)
    @given(instance_batches())
    def test_kernel_matches_scalar_smith_orders(self, kernel, insts):
        batch = InstanceBatch.from_instances(insts)
        solution = solve_ordered_relaxation_batch(batch, kernel=kernel)
        orders = [inst.smith_order() for inst in insts]
        assert_matches_scalar(insts, orders, solution)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=20, deadline=None)
    @given(batches_with_orders())
    def test_kernel_matches_scalar_on_degenerate_orders(self, kernel, insts_orders):
        insts, orders = insts_orders
        batch = InstanceBatch.from_instances(insts)
        solution = solve_ordered_relaxation_batch(batch, orders, kernel=kernel)
        assert_matches_scalar(insts, orders, solution)

    @settings(max_examples=10, deadline=None)
    @given(batches_with_orders(max_batch=3))
    def test_scipy_dispatch_matches_kernel(self, insts_orders):
        insts, orders = insts_orders
        batch = InstanceBatch.from_instances(insts)
        kernel = solve_ordered_relaxation_batch(batch, orders, backend="batch")
        scipy_path = solve_ordered_relaxation_batch(batch, orders, backend="scipy")
        np.testing.assert_allclose(
            kernel.objectives, scipy_path.objectives, rtol=1e-6, atol=1e-8
        )

    @settings(max_examples=6, deadline=None)
    @given(batches_with_orders(max_batch=2))
    def test_simplex_dispatch_matches_kernel(self, insts_orders):
        insts, orders = insts_orders
        batch = InstanceBatch.from_instances(insts)
        kernel = solve_ordered_relaxation_batch(batch, orders, backend="batch")
        simplex_path = solve_ordered_relaxation_batch(batch, orders, backend="simplex")
        np.testing.assert_allclose(
            kernel.objectives, simplex_path.objectives, rtol=1e-6, atol=1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(instance_batches(max_batch=3))
    def test_schedules_are_valid_and_price_the_objective(self, insts):
        batch = InstanceBatch.from_instances(insts)
        solution = solve_ordered_relaxation_batch(batch, build_schedules=True)
        schedules = solution.schedules(insts)
        for b, sched in enumerate(schedules):
            validate_column_schedule(sched)
            assert times_close(
                sched.weighted_completion_time(), solution.objectives[b], rtol=1e-6, atol=1e-7
            )

    def test_single_task_row(self):
        inst = Instance(P=4, tasks=[Task(volume=6, weight=2, delta=3)])
        batch = InstanceBatch.from_instances([inst])
        solution = solve_ordered_relaxation_batch(batch)
        assert solution.objectives[0] == pytest.approx(2 * 2.0)

    def test_empty_instance_row(self):
        batch = InstanceBatch.from_instances(
            [Instance(P=1, tasks=[]), Instance.from_arrays(P=1.0, volumes=[1.0])]
        )
        solution = solve_ordered_relaxation_batch(batch)
        assert solution.objectives[0] == 0.0
        assert solution.objectives[1] == pytest.approx(1.0)

    def test_schedules_without_rates_raise(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0])])
        solution = solve_ordered_relaxation_batch(batch, backend="scipy")
        with pytest.raises(SolverError):
            solution.schedules()

    def test_full_array_orders_accepted(self):
        insts = [
            Instance.from_arrays(P=2.0, volumes=[1.0, 2.0]),
            Instance.from_arrays(P=1.0, volumes=[1.0, 0.5]),
        ]
        batch = InstanceBatch.from_instances(insts)
        orders = np.array([[1, 0], [0, 1]])
        solution = solve_ordered_relaxation_batch(batch, orders)
        for b, inst in enumerate(insts):
            ref = solve_ordered_relaxation(inst, list(orders[b]), build_schedule=False)
            assert solution.objectives[b] == pytest.approx(ref.objective, rel=1e-7)

    def test_schedules_default_to_unpacking_the_batch(self):
        batch = InstanceBatch.from_instances(
            [Instance.from_arrays(P=2.0, volumes=[1.0, 2.0], names=["a", "b"])]
        )
        solution = solve_ordered_relaxation_batch(batch, build_schedules=True)
        (schedule,) = solution.schedules()
        validate_column_schedule(schedule)
        assert schedule.instance.tasks[0].name == "a"

    def test_scipy_dispatch_schedules_stay_valid_with_zero_weights(self):
        # Regression: zero-weight tasks make the LP optimum non-unique, so
        # the scalar dispatch must take completion times AND rates from the
        # same solve — mixing solver vertices broke volume conservation.
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(2, 5))
            weights = rng.uniform(0.1, 2.0, size=n)
            weights[int(rng.integers(0, n))] = 0.0
            inst = Instance(
                P=2.0,
                tasks=[
                    Task(
                        volume=float(rng.uniform(0.2, 3.0)),
                        weight=float(w),
                        delta=float(rng.uniform(0.2, 2.0)),
                    )
                    for w in weights
                ],
            )
            batch = InstanceBatch.from_instances([inst])
            solution = solve_ordered_relaxation_batch(
                batch, backend="scipy", build_schedules=True
            )
            (schedule,) = solution.schedules([inst])
            validate_column_schedule(schedule)

    def test_scipy_dispatch_can_build_schedules(self):
        insts = [Instance.from_arrays(P=2.0, volumes=[1.0, 2.0, 0.5])]
        batch = InstanceBatch.from_instances(insts)
        solution = solve_ordered_relaxation_batch(batch, backend="scipy", build_schedules=True)
        (schedule,) = solution.schedules(insts)
        validate_column_schedule(schedule)
        assert times_close(
            schedule.weighted_completion_time(), solution.objectives[0], rtol=1e-6, atol=1e-7
        )

    def test_padding_equals_unpadded_solution(self):
        # The padded LP of a ragged row must price exactly like the unpadded
        # scalar LP: padding tasks are inert.
        small = Instance.from_arrays(P=2.0, volumes=[1.5, 0.5], weights=[1.0, 3.0], deltas=[1.0, 2.0])
        big = Instance.from_arrays(P=3.0, volumes=[1.0] * 5)
        batch = InstanceBatch.from_instances([small, big])
        solution = solve_ordered_relaxation_batch(batch)
        ref = solve_ordered_relaxation(small, small.smith_order(), build_schedule=False)
        assert solution.objectives[0] == pytest.approx(ref.objective, rel=1e-7)


# --------------------------------------------------------------------- #
# Exact optima and lower bounds
# --------------------------------------------------------------------- #


class TestOptimal:
    @settings(max_examples=8, deadline=None)
    @given(instance_batches(max_batch=3))
    def test_matches_bruteforce_optimal(self, insts):
        batch = InstanceBatch.from_instances(insts)
        result = optimal(batch)
        for b, inst in enumerate(insts):
            ref = optimal_value(inst)
            assert times_close(result.objectives[b], ref, rtol=1e-6, atol=1e-8)

    def test_best_orders_achieve_the_optimum(self):
        insts = [
            Instance.from_arrays(
                P=2.0, volumes=[2.0, 1.0, 3.0], weights=[1.0, 2.0, 1.0], deltas=[1.0, 2.0, 1.5]
            )
        ]
        batch = InstanceBatch.from_instances(insts)
        result = optimal(batch)
        order = [int(t) for t in result.orders[0, : insts[0].n]]
        achieved = solve_ordered_relaxation(insts[0], order, build_schedule=False).objective
        assert achieved == pytest.approx(result.objectives[0], rel=1e-7)

    def test_task_guard(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0] * 8)])
        with pytest.raises(InvalidInstanceError):
            optimal(batch, max_tasks=7)

    def test_chunking_is_lossless(self):
        rng = np.random.default_rng(5)
        insts = [
            Instance.from_arrays(P=2.0, volumes=rng.uniform(0.5, 2.0, size=4)) for _ in range(5)
        ]
        batch = InstanceBatch.from_instances(insts)
        whole = optimal(batch, method="enumerate")
        chunked = optimal(batch, method="enumerate", chunk_size=24)  # one row per chunk
        np.testing.assert_allclose(whole.objectives, chunked.objectives, rtol=1e-9)
        assert whole.orderings_evaluated == chunked.orderings_evaluated == 5 * 24


class TestLowerBoundBatch:
    @settings(max_examples=8, deadline=None)
    @given(instance_batches(max_batch=3))
    def test_exact_dominates_combined(self, insts):
        batch = InstanceBatch.from_instances(insts)
        combined = lower_bound_batch(batch, method="combined")
        with pytest.deprecated_call(match=r"repro\.lp\.optimal"):
            exact = lower_bound_batch(batch, method="exact")
        np.testing.assert_allclose(combined, combined_lower_bound_batch(batch))
        assert np.all(time_leq(combined, exact, rtol=1e-6, atol=1e-8))

    def test_unknown_method(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0])])
        with pytest.raises(InvalidInstanceError):
            lower_bound_batch(batch, method="bogus")


# --------------------------------------------------------------------- #
# Execution-context dispatch
# --------------------------------------------------------------------- #


class TestContextDispatch:
    def _batch(self):
        rng = np.random.default_rng(11)
        insts = [
            Instance.from_arrays(P=2.0, volumes=rng.uniform(0.5, 2.0, size=n))
            for n in (2, 3, 1, 4)
        ]
        return insts, InstanceBatch.from_instances(insts)

    def test_backends_agree(self):
        insts, batch = self._batch()
        serial = ExecutionContext(seed=0).ordered_relaxation(batch)
        vectorized = ExecutionContext(seed=0, backend="vectorized").ordered_relaxation(batch)
        np.testing.assert_allclose(serial.objectives, vectorized.objectives, rtol=1e-6, atol=1e-8)
        assert serial.backend == "scipy" and vectorized.backend == "batch"

    def test_process_pool_dispatch_agrees(self):
        insts, batch = self._batch()
        serial = ExecutionContext(seed=0).ordered_relaxation(batch)
        with ExecutionContext(seed=0, backend="process-pool", workers=2) as ctx:
            pooled = ctx.ordered_relaxation(batch)
        np.testing.assert_allclose(serial.objectives, pooled.objectives, rtol=1e-9)

    def test_resolved_lp_backend(self):
        assert ExecutionContext().resolved_lp_backend() == "scipy"
        assert ExecutionContext(backend="vectorized").resolved_lp_backend() == "batch"
        assert (
            ExecutionContext(backend="vectorized", lp_backend="simplex").resolved_lp_backend()
            == "simplex"
        )
        with pytest.raises(ValueError):
            ExecutionContext(lp_backend="bogus")
