"""Tests for the multi-node cluster backend (repro.exec.cluster).

Four layers, mirroring how the backend can fail:

* **Protocol** — registry round trips for every coordinator/worker wire
  message, strict tagged decode, oversized-payload and garbage-line
  rejection (the ``tests/test_api.py`` pattern, pointed at
  :data:`~repro.exec.cluster.CLUSTER_REGISTRY`).
* **Sharding properties** — Hypothesis: :func:`assign_cells` is a
  deterministic, lossless partition, and a resumed sweep re-dispatches
  exactly the uncached remainder.
* **Cache invariance** — the differential guarantee that ``ResultCache``
  keys never mention the backend: a cluster-populated cache is served
  verbatim by serial/vectorized and vice versa.
* **Chaos** (``-m chaos``) — real localhost worker subprocesses via
  ``tests/chaos.py``: a node killed mid-sweep, a straggler past the cell
  timeout, a coordinator aborted and restarted — results must stay
  tolerance-identical to the serial backend throughout, and no cell may
  lose work twice.
"""

from __future__ import annotations

import dataclasses
import json
import math
import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ProtocolError
from repro.batch.cache import ResultCache
from repro.core.batch import InstanceBatch
from repro.exec import BACKENDS, ExecutionContext
from repro.exec.cluster import (
    CLUSTER_MESSAGE_TYPES,
    CLUSTER_REGISTRY,
    CLUSTER_REPLY_TYPES,
    CLUSTER_REQUEST_TYPES,
    MAX_CLUSTER_LINE_BYTES,
    BatchAck,
    CellDone,
    ClusterAborted,
    ClusterCoordinator,
    ClusterError,
    Drain,
    DrainAck,
    Handshake,
    HelloReply,
    JobFailed,
    Ping,
    Pong,
    PushBatch,
    RunCell,
    RunChunk,
    RunTask,
    TaskDone,
    WorkerNode,
    assign_cells,
    batch_fingerprint,
    decode_arrays,
    decode_cluster_line,
    encode_arrays,
    encode_cluster_line,
    parse_hosts,
)
from repro.scenarios import ScenarioSpec, SweepRunner
from repro.workloads import uniform_instances

from tests.chaos import WorkerFleet


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def tiny_spec(name: str = "cluster-tiny", cells: int = 4) -> ScenarioSpec:
    """A small but non-trivial sweep: `cells` cells, two policies each."""
    return ScenarioSpec(
        name=name,
        generator="uniform_instances",
        grid={"n": [3 + i for i in range(cells)]},
        count=2,
        policies=("WDEQ", "DEQ"),
    )


def run_serial(spec: ScenarioSpec, seed: int = 3):
    with ExecutionContext(seed=seed) as ctx:
        return SweepRunner(spec, ctx).run()


def assert_tables_close(a, b, rtol: float = 1e-6) -> None:
    """Tolerance comparison of two SweepResult summary tables."""
    assert a.headers == b.headers
    assert len(a.rows) == len(b.rows)
    for row_a, row_b in zip(a.rows, b.rows):
        for cell_a, cell_b in zip(row_a, row_b):
            try:
                fa, fb = float(cell_a), float(cell_b)
            except (TypeError, ValueError):
                assert cell_a == cell_b
                continue
            assert math.isclose(fa, fb, rel_tol=rtol, abs_tol=1e-9), (cell_a, cell_b)


def _row_volume(sub):
    """Module-level so it pickles into RunChunk jobs by reference."""
    return [float(v) for v in sub.volumes.sum(axis=1)]


def _explode(item):
    """Module-level failing job for the retry-exhaustion test."""
    raise ValueError(f"boom {item}")


class LocalNodes:
    """In-process worker nodes for the non-chaos tests (fast, no subprocess)."""

    def __init__(self, count: int = 2):
        self.nodes = [WorkerNode() for _ in range(count)]
        self.hosts = [f"{host}:{port}" for host, port in (n.start() for n in self.nodes)]

    def __enter__(self) -> "LocalNodes":
        return self

    def __exit__(self, *exc_info: object) -> None:
        for node in self.nodes:
            node.stop()


# --------------------------------------------------------------------- #
# Protocol round trips (the tests/test_api.py registry pattern)
# --------------------------------------------------------------------- #

#: One representative instance per wire message type, non-default everywhere.
_EXAMPLES = [
    Handshake(coordinator="pid99", protocol=1),
    HelloReply(worker_id="w0", pid=42, protocol=1, draining=True),
    Ping(seq=7),
    Pong(seq=7, inflight=1, completed=12),
    RunCell(job_id=3, payload={"spec": {"name": "s"}, "cell": {"index": 3}}),
    CellDone(job_id=3, records=({"label": "WDEQ", "metrics": {"mean_ratio": 1.5}},)),
    RunTask(job_id=4, task="cGlja2xl"),
    TaskDone(job_id=4, result="cmVzdWx0"),
    PushBatch(
        batch_id="abc123",
        arrays=({"name": "P", "shape": [2], "dtype": "float64", "data": "AAA="},),
    ),
    BatchAck(batch_id="abc123", cached=True),
    RunChunk(job_id=5, batch_id="abc123", fn="Zm4=", lo=0, hi=4),
    JobFailed(job_id=6, error="ValueError: boom", retryable=False),
    Drain(reason="shutdown"),
    DrainAck(worker_id="w0", completed=12),
]


class TestClusterProtocol:
    def test_every_message_type_has_an_example(self):
        assert {type(example) for example in _EXAMPLES} == set(
            CLUSTER_MESSAGE_TYPES.values()
        )

    def test_request_reply_split_covers_registry(self):
        assert set(CLUSTER_REQUEST_TYPES) | set(CLUSTER_REPLY_TYPES) == set(
            CLUSTER_MESSAGE_TYPES.values()
        )
        assert not set(CLUSTER_REQUEST_TYPES) & set(CLUSTER_REPLY_TYPES)

    @pytest.mark.parametrize("example", _EXAMPLES, ids=lambda m: type(m).__name__)
    def test_round_trip_is_lossless(self, example):
        payload = CLUSTER_REGISTRY.encode(example)
        assert payload["type"] == CLUSTER_REGISTRY.message_type(example)
        assert CLUSTER_REGISTRY.decode(payload) == example

    @pytest.mark.parametrize("example", _EXAMPLES, ids=lambda m: type(m).__name__)
    def test_line_round_trip_through_json(self, example):
        line = encode_cluster_line(example)
        assert line.endswith(b"\n")
        json.loads(line)  # the line is genuine JSON
        assert decode_cluster_line(line.rstrip(b"\n")) == example

    def test_tuple_fields_decode_back_to_tuples(self):
        done = CLUSTER_REGISTRY.decode(
            {"type": "cell_done", "job_id": 1, "records": [{"a": 1}, {"b": 2}]}
        )
        assert isinstance(done.records, tuple)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            CLUSTER_REGISTRY.decode({"type": "no_such_message"})

    def test_unexpected_field_rejected(self):
        with pytest.raises(ProtocolError, match="unexpected field"):
            CLUSTER_REGISTRY.decode({"type": "ping", "seq": 1, "evil": True})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="invalid 'run_cell' message"):
            CLUSTER_REGISTRY.decode({"type": "run_cell", "job_id": 1})

    def test_foreign_message_rejected_with_registry_label(self):
        from repro.api import SubmitTask

        with pytest.raises(ProtocolError, match="repro.exec.cluster message type"):
            CLUSTER_REGISTRY.encode(SubmitTask(volume=1.0))

    def test_service_registry_does_not_know_cluster_messages(self):
        from repro.service.protocol import decode_line

        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_line(encode_cluster_line(Ping(seq=1)).rstrip(b"\n"))

    def test_garbage_line_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_cluster_line(b"this is not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(ProtocolError, match="expected a mapping"):
            decode_cluster_line(b"[1, 2, 3]")

    def test_oversized_line_rejected(self):
        line = encode_cluster_line(RunTask(job_id=1, task="x" * 128))
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_cluster_line(line, max_bytes=16)
        assert decode_cluster_line(line.rstrip(b"\n")) is not None

    def test_default_line_cap_is_larger_than_the_service_cap(self):
        from repro.service.protocol import MAX_LINE_BYTES

        assert MAX_CLUSTER_LINE_BYTES > MAX_LINE_BYTES

    def test_all_messages_are_frozen(self):
        for example in _EXAMPLES:
            field_name = dataclasses.fields(example)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(example, field_name, None)

    def test_array_codec_round_trip(self):
        arrays = {
            "P": np.array([2.0, 4.0]),
            "mask": np.array([[True, False], [True, True]]),
        }
        decoded = decode_arrays(encode_arrays(arrays))
        assert set(decoded) == {"P", "mask"}
        for name in arrays:
            assert decoded[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(decoded[name], arrays[name])

    def test_batch_fingerprint_tracks_content(self):
        a = {"x": np.arange(6, dtype=float)}
        b = {"x": np.arange(6, dtype=float)}
        assert batch_fingerprint(a) == batch_fingerprint(b)
        b["x"] = b["x"] + 1.0
        assert batch_fingerprint(a) != batch_fingerprint(b)

    def test_parse_hosts(self):
        assert parse_hosts("h1:1, h2:2") == (("h1", 1), ("h2", 2))
        assert parse_hosts(["h1:1"]) == (("h1", 1),)
        with pytest.raises(ValueError, match="host:port"):
            parse_hosts("nocolon")
        with pytest.raises(ValueError, match="invalid port"):
            parse_hosts("h1:notaport")
        with pytest.raises(ValueError, match="no worker hosts"):
            parse_hosts("")

    def test_live_worker_answers_garbage_with_structured_failure(self):
        """A garbage line on a live connection gets a JobFailed, not a hangup."""
        with LocalNodes(count=1) as local:
            host, port = parse_hosts(local.hosts)[0]
            with socket.create_connection((host, port), timeout=10.0) as sock:
                sock.sendall(b"utter garbage\n")
                reply = decode_cluster_line(
                    sock.makefile("rb").readline().rstrip(b"\n")
                )
        assert isinstance(reply, JobFailed)
        assert not reply.retryable
        assert "protocol" in reply.error


# --------------------------------------------------------------------- #
# Sharding properties (Hypothesis)
# --------------------------------------------------------------------- #


class TestShardingProperties:
    @given(num_cells=st.integers(0, 300), num_workers=st.integers(1, 48))
    def test_assignment_is_a_lossless_partition(self, num_cells, num_workers):
        shards = assign_cells(num_cells, num_workers)
        assert len(shards) == num_workers
        flat = [index for shard in shards for index in shard]
        # Union equals the grid and no duplicates (lossless partition).
        assert sorted(flat) == list(range(num_cells))
        assert len(flat) == len(set(flat))
        # Balanced: shard sizes differ by at most one.
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1
        # Deterministic: a pure function of the two counts.
        assert shards == assign_cells(num_cells, num_workers)

    @given(num_workers=st.integers(-3, 0))
    def test_nonpositive_worker_count_rejected(self, num_workers):
        with pytest.raises(ValueError):
            assign_cells(4, num_workers)

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_resumed_run_dispatches_exactly_the_uncached_remainder(self, data):
        """Evict a random subset of a completed sweep's cells, re-run, and
        assert the runner dispatches exactly the evicted cells — no cached
        cell is recomputed, no missing cell is skipped."""
        num_cells = data.draw(st.integers(1, 5), label="num_cells")
        spec = ScenarioSpec(
            name="resume-prop",
            generator="uniform_instances",
            grid={"n": [2 + i for i in range(num_cells)]},
            count=1,
            policies=("WDEQ",),
        )
        cache = ResultCache()
        ctx = ExecutionContext(seed=1, cache=cache)
        runner = SweepRunner(spec, ctx)
        reference = runner.run()
        keys = runner.cell_cache_keys()
        evicted = data.draw(
            st.sets(st.integers(0, num_cells - 1)), label="evicted"
        )
        for index in evicted:
            assert cache.discard(keys[index])

        dispatched: "list[int]" = []
        original = ctx.map_cells

        def recording_map_cells(payloads, on_result=None):
            dispatched.extend(p["cell"]["index"] for p in payloads)
            return original(payloads, on_result=on_result)

        ctx.map_cells = recording_map_cells  # type: ignore[method-assign]
        try:
            resumed = runner.run()
        finally:
            ctx.map_cells = original  # type: ignore[method-assign]
        assert sorted(dispatched) == sorted(evicted)
        assert resumed.rows == reference.rows


# --------------------------------------------------------------------- #
# Cache invariance: keys never mention the backend
# --------------------------------------------------------------------- #


class TestCacheBackendInvariance:
    def test_cache_key_never_mentions_a_backend(self):
        runner = SweepRunner(tiny_spec(), ExecutionContext(seed=3))
        for key in runner.cell_cache_keys():
            # The execution backend must never join the key ("lp_backend",
            # the solver dimension, legitimately does).
            assert '"backend"' not in key

    def test_serial_vectorized_and_cluster_share_cell_keys(self):
        spec = tiny_spec()
        keys = [
            SweepRunner(
                spec, ExecutionContext(seed=3, backend=backend, lp_backend="scipy", hosts=hosts)
            ).cell_cache_keys()
            for backend, hosts in (
                ("serial", ()),
                ("vectorized", ()),
                ("cluster", ["127.0.0.1:1"]),
            )
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_cluster_cache_served_verbatim_by_serial_and_vectorized(self):
        """A cache populated by a cluster sweep satisfies serial and
        vectorized reruns without a single recomputation, verbatim."""
        spec = tiny_spec("cluster-cache-diff")
        cache = ResultCache()
        with LocalNodes(count=2) as local:
            coordinator = ClusterCoordinator(local.hosts, cell_timeout=60.0)
            with ExecutionContext(
                seed=3,
                backend="cluster",
                coordinator=coordinator,
                cache=cache,
                lp_backend="scipy",
            ) as ctx:
                cluster_result = SweepRunner(spec, ctx).run()
        assert coordinator.stats["completed"] == len(SweepRunner(spec, ExecutionContext(seed=3)).cells())

        # lp_backend is pinned throughout: the *solver* dimension is part of
        # the key by design (an 'auto' resolves to the lockstep kernel on
        # vectorized contexts); the *execution backend* must not be.
        for backend in ("serial", "vectorized"):
            hits_before = cache.hits
            with ExecutionContext(
                seed=3, backend=backend, cache=cache, lp_backend="scipy"
            ) as ctx:
                replayed = SweepRunner(spec, ctx).run()
            assert cache.hits - hits_before == len(SweepRunner(spec, ctx).cells())
            # Verbatim: identical records, not merely tolerance-close.
            assert replayed.records == cluster_result.records

    def test_serial_cache_served_verbatim_by_cluster(self):
        """The reverse direction: a serial-populated cache means the cluster
        coordinator dispatches nothing at all."""
        spec = tiny_spec("serial-cache-diff")
        cache = ResultCache()
        with ExecutionContext(seed=3, cache=cache) as ctx:
            serial_result = SweepRunner(spec, ctx).run()
        with LocalNodes(count=2) as local:
            coordinator = ClusterCoordinator(local.hosts, cell_timeout=60.0)
            with ExecutionContext(
                seed=3, backend="cluster", coordinator=coordinator, cache=cache
            ) as ctx:
                replayed = SweepRunner(spec, ctx).run()
            assert coordinator.stats["dispatched"] == 0
        assert replayed.records == serial_result.records


# --------------------------------------------------------------------- #
# Coordinator/worker behaviour with in-process nodes (no subprocesses)
# --------------------------------------------------------------------- #


class TestClusterExecution:
    def test_cluster_is_a_registered_backend(self):
        assert "cluster" in BACKENDS

    def test_cluster_backend_requires_hosts(self):
        with pytest.raises(ValueError, match="hosts"):
            ExecutionContext(backend="cluster")
        with pytest.raises(ValueError, match="--hosts"):
            ExecutionContext.from_options(backend="cluster")

    def test_from_options_builds_a_cluster_context(self):
        ctx = ExecutionContext.from_options(
            backend="cluster", hosts="127.0.0.1:1", cell_timeout=7.5, cluster_retries=5
        )
        assert ctx.backend == "cluster"
        assert ctx.cell_timeout == 7.5
        assert ctx.cluster_retries == 5
        assert ctx.runner is None  # no local pool behind a cluster context

    def test_unreachable_hosts_raise_cluster_error(self):
        coordinator = ClusterCoordinator(["127.0.0.1:9"], connect_timeout=0.5)
        with pytest.raises(ClusterError, match="no cluster workers reachable"):
            coordinator.connect()

    def test_map_matches_in_process(self):
        with LocalNodes(count=2) as local:
            with ClusterCoordinator(local.hosts) as coordinator:
                assert coordinator.map(str.upper, list("abcdef")) == list("ABCDEF")

    def test_map_cells_preserves_payload_order(self):
        spec = tiny_spec("order-check")
        runner = SweepRunner(spec, ExecutionContext(seed=3))
        payloads = runner.payloads()
        with LocalNodes(count=3) as local:
            with ClusterCoordinator(local.hosts, cell_timeout=60.0) as coordinator:
                results = coordinator.map_cells(payloads)
        assert [records[0]["cell"] for records in results] == [
            p["cell"]["index"] for p in payloads
        ]

    def test_map_batch_matches_serial_and_reuses_pushes(self):
        batch = InstanceBatch.from_instances(list(uniform_instances(n=5, count=16, rng=0)))

        serial = ExecutionContext().map_batch(_row_volume, batch)
        with LocalNodes(count=2) as local:
            with ClusterCoordinator(local.hosts) as coordinator:
                ctx = ExecutionContext(backend="cluster", coordinator=coordinator)
                first = ctx.map_batch(_row_volume, batch)
                pushes_after_first = coordinator.stats["batches_pushed"]
                second = ctx.map_batch(_row_volume, batch)
                assert coordinator.stats["batches_pushed"] == pushes_after_first
        assert np.allclose(first, serial)
        assert np.allclose(second, serial)
        assert pushes_after_first <= 2  # once per node, never once per chunk

    def test_remote_exception_becomes_cluster_error(self):
        with LocalNodes(count=1) as local:
            with ClusterCoordinator(local.hosts, max_retries=1) as coordinator:
                with pytest.raises(ClusterError, match="boom"):
                    coordinator.map(_explode, [1])
                # The worker survives a failing job and keeps serving.
                assert coordinator.map(str.lower, ["OK"]) == ["ok"]

    def test_heartbeat_detects_dead_worker(self):
        with LocalNodes(count=2) as local:
            coordinator = ClusterCoordinator(local.hosts)
            assert coordinator.connect() == 2
            local.nodes[0].stop()
            assert coordinator.ping() == 1
            assert coordinator.stats["dead_workers"] == 1
            coordinator.close()

    def test_drain_message_stops_a_node(self):
        with LocalNodes(count=1) as local:
            coordinator = ClusterCoordinator(local.hosts)
            coordinator.connect()
            assert coordinator.drain_workers() == 1
            assert local.nodes[0].draining
            coordinator.close()

    def test_abort_after_raises_cluster_aborted(self):
        spec = tiny_spec("abort-check")
        payloads = SweepRunner(spec, ExecutionContext(seed=3)).payloads()
        with LocalNodes(count=2) as local:
            coordinator = ClusterCoordinator(
                local.hosts, cell_timeout=60.0, abort_after=2
            )
            with pytest.raises(ClusterAborted):
                coordinator.map_cells(payloads)
            assert coordinator.stats["completed"] >= 2
            coordinator.close()


# --------------------------------------------------------------------- #
# Chaos: real localhost worker subprocesses
# --------------------------------------------------------------------- #


@pytest.mark.chaos
class TestChaos:
    def test_sweep_matches_serial_across_three_workers(self):
        spec = tiny_spec("chaos-baseline")
        serial = run_serial(spec)
        with WorkerFleet(count=3) as fleet:
            with ExecutionContext(
                seed=3, backend="cluster", hosts=fleet.hosts, cell_timeout=120.0
            ) as ctx:
                clustered = SweepRunner(spec, ctx).run()
        assert_tables_close(clustered, serial)

    def test_worker_killed_mid_sweep_loses_no_work_twice(self):
        """One node takes a few cells then dies mid-cell without replying
        (os._exit on job arrival — the deterministic kill -9).  The sweep
        must finish, match serial, and record every cell exactly once."""
        spec = tiny_spec("chaos-kill", cells=6)
        serial = run_serial(spec)
        with WorkerFleet(count=3, die_after={0: 1}) as fleet:
            coordinator = ClusterCoordinator(
                fleet.hosts, cell_timeout=120.0, max_retries=2
            )
            with ExecutionContext(
                seed=3, backend="cluster", coordinator=coordinator
            ) as ctx:
                clustered = SweepRunner(spec, ctx).run()
            stats = dict(coordinator.stats)
        assert_tables_close(clustered, serial)
        assert stats["dead_workers"] >= 1
        assert stats["reassigned"] >= 1
        # First completion wins and every cell is recorded exactly once: the
        # records of a 6-cell, 2-policy sweep are exactly 12, and the engine
        # observed no duplicate completions.
        assert len(clustered.records) == len(serial.records)
        assert stats["duplicates"] == 0
        # No cell ran its lost work twice: each reassigned cell completed on
        # its second home, so completions never exceed cells.
        assert stats["completed"] == len(SweepRunner(spec, ExecutionContext(seed=3)).cells())

    def test_straggler_past_cell_timeout_is_reassigned(self):
        """One node sleeps past the per-cell timeout on every job; the
        coordinator must declare it dead and reassign to live workers."""
        spec = tiny_spec("chaos-straggler")
        serial = run_serial(spec)
        with WorkerFleet(count=3, delays={2: 30.0}) as fleet:
            coordinator = ClusterCoordinator(
                fleet.hosts, cell_timeout=2.0, max_retries=2
            )
            with ExecutionContext(
                seed=3, backend="cluster", coordinator=coordinator
            ) as ctx:
                clustered = SweepRunner(spec, ctx).run()
            stats = dict(coordinator.stats)
        assert_tables_close(clustered, serial)
        assert stats["dead_workers"] >= 1
        assert stats["duplicates"] == 0

    def test_coordinator_restart_resumes_from_last_completed_cell(self, tmp_path):
        """Kill the coordinator mid-sweep (abort_after), restart with the
        same --cache-dir, and assert the resumed run dispatches exactly the
        uncached remainder and ends tolerance-identical to serial."""
        spec = tiny_spec("chaos-restart", cells=6)
        serial = run_serial(spec)
        cache_dir = str(tmp_path / "cache")
        with WorkerFleet(count=2) as fleet:
            # First coordinator: dies after 2 completed cells.
            ctx = ExecutionContext.from_options(
                seed=3, backend="cluster", hosts=",".join(fleet.hosts), cache_dir=cache_dir
            )
            ctx.coordinator = ClusterCoordinator(
                fleet.hosts, cell_timeout=120.0, abort_after=2
            )
            with pytest.raises(ClusterAborted):
                SweepRunner(spec, ctx).run()
            ctx.coordinator.close()
            # The incremental persistence wrote the completed cells through.
            resumed_cache = ResultCache(
                path=str(tmp_path / "cache" / "results-cache.json")
            )
            cached_cells = len(resumed_cache)
            assert cached_cells >= 2

            # Restarted coordinator, same cache dir: only the remainder runs.
            ctx2 = ExecutionContext.from_options(
                seed=3, backend="cluster", hosts=",".join(fleet.hosts), cache_dir=cache_dir
            )
            with ctx2:
                resumed = SweepRunner(spec, ctx2).run()
                total_cells = len(SweepRunner(spec, ctx2).cells())
                assert ctx2.coordinator.stats["dispatched"] == total_cells - cached_cells
        assert_tables_close(resumed, serial)

    def test_sigterm_drains_a_worker_cleanly(self):
        with WorkerFleet(count=2) as fleet:
            coordinator = ClusterCoordinator(fleet.hosts)
            assert coordinator.connect() == 2
            assert fleet.terminate(0) == 0  # graceful drain, clean exit
            assert coordinator.ping() == 1
            coordinator.close()

    def test_all_workers_dead_fails_loudly(self):
        with WorkerFleet(count=1) as fleet:
            coordinator = ClusterCoordinator(
                fleet.hosts, cell_timeout=5.0, max_retries=1
            )
            coordinator.connect()
            fleet.kill(0)
            with pytest.raises(ClusterError):
                coordinator.map(str.upper, list("abc"))
            coordinator.close()
