"""Property tests: the batched discrete-event simulation equals the scalar one.

For random padded batches (mixed sizes, degenerate one-task rows), random
policies and random release patterns, the lockstep kernel of
:mod:`repro.batch.sim_kernels` must produce the same completion times and
the same event trace (releases, reshare decisions with their allocations,
completion order) as running :func:`repro.simulation.engine.simulate` on
every row separately.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ratios import policy_ratios
from repro.batch.compiled import numba_available
from repro.batch.sim_kernels import (
    BatchPolicy,
    DeqBatchPolicy,
    FairShareNoCapBatchPolicy,
    PriorityBatchPolicy,
    WdeqBatchPolicy,
    default_batch_policies,
    policy_ratios_batch,
    simulate_batch,
)
from repro.core.batch import InstanceBatch
from repro.core.exceptions import InvalidInstanceError, SimulationError
from repro.core.instance import Instance, Task
from repro.simulation.engine import simulate
from repro.simulation.nonclairvoyant import default_policies
from repro.workloads.generators import cluster_instances

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

finite = dict(allow_nan=False, allow_infinity=False)

#: The differential suites run under every kernel tier available on this
#: machine; the compiled tier must be byte-identical at float64 wherever it
#: engages (completions-only runs) and falls back to the same NumPy code
#: everywhere else, so the assertions do not change per kernel.
KERNELS = ["numpy"] + (["compiled"] if numba_available() else [])


@st.composite
def instances(draw, min_tasks: int = 1, max_tasks: int = 6):
    """One random instance with well-conditioned parameters."""
    n = draw(st.integers(min_tasks, max_tasks))
    P = draw(st.floats(0.5, 4.0, **finite))
    tasks = []
    for _ in range(n):
        volume = draw(st.floats(0.05, 10.0, **finite))
        weight = draw(st.floats(0.05, 10.0, **finite))
        delta = draw(st.floats(0.05, 1.0, **finite)) * P
        tasks.append(Task(volume=volume, weight=weight, delta=delta))
    return Instance(P=P, tasks=tasks)


@st.composite
def instance_batches(draw, max_batch: int = 5):
    """A batch of random instances of *mixed* sizes (padding is exercised)."""
    return draw(st.lists(instances(), min_size=1, max_size=max_batch))


@st.composite
def batches_with_releases(draw, max_batch: int = 4):
    """Instances plus well-separated release times (multiples of 1/2)."""
    insts = draw(instance_batches(max_batch=max_batch))
    releases = [
        [draw(st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.5])) for _ in range(inst.n)]
        for inst in insts
    ]
    return insts, releases


def _padded_releases(batch: InstanceBatch, releases: list[list[float]]) -> np.ndarray:
    padded = np.zeros((batch.batch_size, batch.n_max))
    for b, row in enumerate(releases):
        padded[b, : len(row)] = row
    return padded


def _scalar_policy(instance: Instance, name: str):
    matches = [p for p in default_policies(instance) if p.name == name]
    assert matches, f"no scalar policy named {name!r}"
    return matches[0]


def _assert_traces_match(batch_trace, scalar_trace) -> None:
    assert len(batch_trace.reshare_events) == len(scalar_trace.reshare_events)
    for batch_event, scalar_event in zip(
        batch_trace.reshare_events, scalar_trace.reshare_events
    ):
        assert batch_event.time == pytest.approx(scalar_event.time, rel=1e-7, abs=1e-9)
        assert set(batch_event.allocation) == set(scalar_event.allocation)
        for task, rate in batch_event.allocation.items():
            assert rate == pytest.approx(scalar_event.allocation[task], rel=1e-7, abs=1e-9)
    assert [(e.time, e.task) for e in batch_trace.release_events] == [
        (e.time, e.task) for e in scalar_trace.release_events
    ]
    assert batch_trace.completion_order() == scalar_trace.completion_order()
    for batch_event, scalar_event in zip(
        batch_trace.completion_events, scalar_trace.completion_events
    ):
        assert batch_event.time == pytest.approx(scalar_event.time, rel=1e-7, abs=1e-9)


# --------------------------------------------------------------------- #
# Equivalence with the scalar engine
# --------------------------------------------------------------------- #


class TestSimulateBatchEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=25, deadline=None)
    @given(instance_batches())
    def test_all_policies_match_scalar_completions_and_traces(self, kernel, insts):
        batch = InstanceBatch.from_instances(insts)
        for batch_policy in default_batch_policies(batch):
            result = simulate_batch(batch, batch_policy, record_trace=True, kernel=kernel)
            assert result.completion_times.shape == (batch.batch_size, batch.n_max)
            for b, inst in enumerate(insts):
                scalar = simulate(inst, _scalar_policy(inst, batch_policy.name))
                np.testing.assert_allclose(
                    result.completion_times[b, : inst.n],
                    scalar.completion_times,
                    rtol=1e-7,
                    atol=1e-9,
                )
                assert np.all(result.completion_times[b, inst.n :] == 0.0)
                _assert_traces_match(result.traces[b], scalar.trace)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=20, deadline=None)
    @given(batches_with_releases())
    def test_release_patterns_match_scalar(self, kernel, insts_and_releases):
        insts, releases = insts_and_releases
        batch = InstanceBatch.from_instances(insts)
        padded = _padded_releases(batch, releases)
        for batch_policy in default_batch_policies(batch):
            result = simulate_batch(
                batch, batch_policy, release_times=padded, record_trace=True, kernel=kernel
            )
            for b, inst in enumerate(insts):
                scalar = simulate(
                    inst, _scalar_policy(inst, batch_policy.name), release_times=releases[b]
                )
                np.testing.assert_allclose(
                    result.completion_times[b, : inst.n],
                    scalar.completion_times,
                    rtol=1e-7,
                    atol=1e-9,
                )
                _assert_traces_match(result.traces[b], scalar.trace)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=15, deadline=None)
    @given(instance_batches(max_batch=4))
    def test_objective_helpers_match_scalar(self, kernel, insts):
        batch = InstanceBatch.from_instances(insts)
        result = simulate_batch(batch, WdeqBatchPolicy(), kernel=kernel)
        values = result.weighted_completion_times()
        spans = result.makespans()
        for b, inst in enumerate(insts):
            scalar = simulate(inst, _scalar_policy(inst, "WDEQ"))
            assert values[b] == pytest.approx(scalar.weighted_completion_time(), rel=1e-7)
            assert spans[b] == pytest.approx(scalar.makespan(), rel=1e-7)

    @settings(max_examples=10, deadline=None)
    @given(instance_batches(max_batch=4))
    def test_policy_ratios_batch_matches_scalar(self, insts):
        batch = InstanceBatch.from_instances(insts)
        batched = policy_ratios_batch(batch)
        for b, inst in enumerate(insts):
            scalar = policy_ratios(inst, exact=False)
            assert set(batched) == set(scalar)
            for name, ratios in batched.items():
                assert ratios[b] == pytest.approx(scalar[name], rel=1e-7)

    def test_event_counts_are_bounded(self):
        insts = list(cluster_instances(10, 6, rng=np.random.default_rng(0)))
        batch = InstanceBatch.from_instances(insts)
        result = simulate_batch(batch, DeqBatchPolicy(), record_trace=True)
        for b, trace in enumerate(result.traces):
            assert result.num_events[b] >= trace.num_reshares
            assert result.num_events[b] <= 8 * insts[b].n + 16


# --------------------------------------------------------------------- #
# Engine validation / error paths
# --------------------------------------------------------------------- #


class _Oversubscribe(BatchPolicy):
    name = "greedy-all"

    def allocate(self, P, weights, deltas, work_done, elapsed, active):
        return np.where(active, P[:, None], 0.0)


class _Lazy(BatchPolicy):
    name = "lazy"

    def allocate(self, P, weights, deltas, work_done, elapsed, active):
        return np.zeros_like(weights)


class _Negative(BatchPolicy):
    name = "negative"

    def allocate(self, P, weights, deltas, work_done, elapsed, active):
        return np.where(active, -1.0, 0.0)


class TestSimulateBatchValidation:
    def _batch(self):
        inst = Instance(P=2.0, tasks=[Task(1, 1, 2), Task(1, 1, 2)])
        return InstanceBatch.from_instances([inst])

    def test_oversubscribing_policy_rejected(self):
        with pytest.raises(SimulationError, match="over-subscribed"):
            simulate_batch(self._batch(), _Oversubscribe())

    def test_stalling_policy_rejected(self):
        with pytest.raises(SimulationError, match="stalled"):
            simulate_batch(self._batch(), _Lazy())

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError, match="negative rate"):
            simulate_batch(self._batch(), _Negative())

    def test_bad_release_shape_rejected(self):
        with pytest.raises(SimulationError, match="shape"):
            simulate_batch(self._batch(), WdeqBatchPolicy(), release_times=np.zeros(3))
        with pytest.raises(SimulationError, match="non-negative"):
            simulate_batch(
                self._batch(), WdeqBatchPolicy(), release_times=np.full((1, 2), -1.0)
            )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_zero_weight_rejected_by_wdeq(self, kernel):
        inst = Instance(P=1.0, tasks=[Task(volume=1.0, weight=0.0, delta=0.5)])
        with pytest.raises(InvalidInstanceError):
            simulate_batch(
                InstanceBatch.from_instances([inst]), WdeqBatchPolicy(), kernel=kernel
            )

    def test_priority_policy_tie_break_matches_scalar(self):
        # Equal priorities: the scalar policy serves ascending task index.
        inst = Instance(P=1.0, tasks=[Task(2, 1, 0.8), Task(2, 1, 0.8), Task(2, 1, 0.8)])
        batch = InstanceBatch.from_instances([inst])
        result = simulate_batch(
            batch, PriorityBatchPolicy(priorities=np.zeros((1, 3))), record_trace=True
        )
        from repro.simulation.policies import PriorityPolicy

        scalar = simulate(inst, PriorityPolicy(priorities=[0.0, 0.0, 0.0]))
        np.testing.assert_allclose(
            result.completion_times[0], scalar.completion_times, rtol=1e-9
        )
        assert result.traces[0].completion_order() == scalar.trace.completion_order()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fair_share_requires_positive_weights(self, kernel):
        # Weight zero with the fair-share policy: the total weight is zero.
        inst = Instance(P=1.0, tasks=[Task(volume=1.0, weight=0.0, delta=0.5)])
        with pytest.raises(SimulationError, match="positive weights"):
            simulate_batch(
                InstanceBatch.from_instances([inst]), FairShareNoCapBatchPolicy(), kernel=kernel
            )

    def test_released_only_rows_finish_while_others_wait(self):
        # Row 0 has immediate work, row 1 waits for its release: both finish.
        a = Instance(P=1.0, tasks=[Task(1, 1, 1)])
        b = Instance(P=1.0, tasks=[Task(1, 1, 1)])
        batch = InstanceBatch.from_instances([a, b])
        releases = np.array([[0.0], [5.0]])
        result = simulate_batch(batch, DeqBatchPolicy(), release_times=releases)
        assert result.completion_times[0, 0] == pytest.approx(1.0)
        assert result.completion_times[1, 0] == pytest.approx(6.0)
