"""Consistency checks for the documentation site.

``mkdocs build --strict`` runs in CI (the ``docs`` job); these tests catch
its most common failure modes — nav entries pointing at missing files and
broken relative links between pages — without requiring mkdocs locally, and
assert the generated API pages stay in sync with the docstrings.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

_NAV_FILE = re.compile(r":\s*([\w/.-]+\.md)\s*$", re.MULTILINE)
_MD_LINK = re.compile(r"\]\(([^)#]+)(?:#[^)]*)?\)")


def test_nav_entries_exist():
    config = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
    files = _NAV_FILE.findall(config)
    assert files, "mkdocs.yml nav parsed to zero pages"
    for name in files:
        assert (DOCS_DIR / name).is_file(), f"mkdocs.yml nav references missing docs/{name}"


def test_relative_links_resolve():
    for page in DOCS_DIR.rglob("*.md"):
        text = page.read_text(encoding="utf-8")
        for target in _MD_LINK.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.relative_to(REPO_ROOT)} links to missing {target}"


def test_every_docs_page_is_in_nav():
    config = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
    in_nav = set(_NAV_FILE.findall(config))
    on_disk = {str(p.relative_to(DOCS_DIR)) for p in DOCS_DIR.rglob("*.md")}
    assert on_disk == in_nav, f"nav/page drift: {on_disk ^ in_nav}"


def test_generated_api_pages_in_sync():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr or result.stdout
