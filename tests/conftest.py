"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "regenerate the committed golden files in tests/golden/ from fresh "
            "serial runs instead of comparing against them"
        ),
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite the golden files."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_task_instance() -> Instance:
    """A tiny instance whose optimal schedule is easy to reason about by hand."""
    return Instance(P=2, tasks=[Task(volume=2, weight=2, delta=1), Task(volume=2, weight=1, delta=2)])


@pytest.fixture
def small_instance() -> Instance:
    """A 4-task heterogeneous instance used throughout the unit tests."""
    return Instance(
        P=4,
        tasks=[
            Task(volume=4, weight=2, delta=2, name="A"),
            Task(volume=6, weight=1, delta=3, name="B"),
            Task(volume=2, weight=1, delta=1, name="C"),
            Task(volume=5, weight=3, delta=4, name="D"),
        ],
    )


@pytest.fixture
def uncapped_instance() -> Instance:
    """An instance with no effective per-task caps (delta_i = P)."""
    return Instance(
        P=3,
        tasks=[Task(volume=3, weight=1), Task(volume=6, weight=2), Task(volume=1.5, weight=1)],
    )


@pytest.fixture
def homogeneous_vb_instance() -> Instance:
    """A Section V-B instance: P = 1, V = w = 1, delta in [1/2, 1]."""
    return Instance(
        P=1,
        tasks=[Task(volume=1, weight=1, delta=d) for d in (0.9, 0.7, 0.55)],
    )


def random_instance(
    rng: np.random.Generator, n: int, P: float = 1.0, integer: bool = False
) -> Instance:
    """Helper (not a fixture) to build a random instance inside tests."""
    if integer:
        deltas = rng.integers(1, int(P) + 1, size=n).astype(float)
    else:
        deltas = rng.uniform(0.05 * P, P, size=n)
    return Instance(
        P=P,
        tasks=[
            Task(
                volume=float(rng.uniform(0.1, 1.0)),
                weight=float(rng.uniform(0.1, 1.0)),
                delta=float(d),
            )
            for d in deltas
        ],
    )
