"""Tests for greedy schedules and the best-greedy search (Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidScheduleError
from repro.core.validation import validate_continuous_schedule
from repro.algorithms.greedy import (
    best_greedy_schedule,
    exhaustive_greedy_values,
    greedy_completion_times,
    greedy_schedule,
    local_search_greedy_schedule,
)
from repro.algorithms.optimal import optimal_value
from tests.conftest import random_instance


class TestGreedyCompletionTimes:
    def test_single_task_runs_at_cap(self):
        inst = Instance(P=4, tasks=[Task(volume=6, delta=3)])
        np.testing.assert_allclose(greedy_completion_times(inst, [0]), [2.0])

    def test_two_tasks_first_saturated(self):
        # P=2; first task delta=1 occupies one processor for 2 time units; the
        # second (delta=2) gets 1 processor until t=2 then 2 processors.
        inst = Instance(P=2, tasks=[Task(2, 1, 1), Task(3, 1, 2)])
        completions = greedy_completion_times(inst, [0, 1])
        assert completions[0] == pytest.approx(2.0)
        assert completions[1] == pytest.approx(2.5)

    def test_order_changes_completions(self):
        inst = Instance(P=2, tasks=[Task(2, 1, 1), Task(3, 1, 2)])
        a = greedy_completion_times(inst, [0, 1])
        b = greedy_completion_times(inst, [1, 0])
        assert not np.allclose(a, b)

    def test_invalid_order(self, small_instance):
        with pytest.raises(InvalidScheduleError):
            greedy_completion_times(small_instance, [0, 1, 2])

    def test_empty_instance(self):
        inst = Instance(P=1, tasks=[])
        assert greedy_completion_times(inst, []).size == 0


class TestGreedySchedule:
    def test_schedule_matches_fast_path(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=5, P=2.0)
            order = list(rng.permutation(5))
            fast = greedy_completion_times(inst, order)
            full = greedy_schedule(inst, order)
            validate_continuous_schedule(full)
            np.testing.assert_allclose(full.completion_times(), fast, rtol=1e-7, atol=1e-9)

    def test_greedy_is_work_conserving_prefix(self):
        # The first task in the order always runs at min(delta, P) from t=0.
        inst = Instance(P=2, tasks=[Task(2, 1, 1.5), Task(1, 1, 2)])
        sched = greedy_schedule(inst, [0, 1])
        assert sched.rate_at(0, 0.1) == pytest.approx(1.5)

    def test_empty(self):
        inst = Instance(P=1, tasks=[])
        sched = greedy_schedule(inst, [])
        assert sched.n == 0


class TestBestGreedy:
    def test_exhaustive_small(self, small_instance):
        result = best_greedy_schedule(small_instance)
        assert result.exhaustive
        assert result.evaluated == 24
        assert len(result.order) == 4

    def test_best_greedy_matches_optimal_conjecture12(self, rng):
        """Conjecture 12 on random instances (the paper's E1 in miniature)."""
        for _ in range(10):
            n = int(rng.integers(2, 5))
            inst = random_instance(rng, n=n, P=1.0)
            greedy = best_greedy_schedule(inst)
            opt = optimal_value(inst)
            assert greedy.objective == pytest.approx(opt, rel=1e-6, abs=1e-9)

    def test_best_greedy_never_below_optimal(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=4, P=2.0)
            greedy = best_greedy_schedule(inst)
            assert greedy.objective >= optimal_value(inst) - 1e-7

    def test_schedule_materialisation(self, small_instance):
        result = best_greedy_schedule(small_instance)
        sched = result.schedule(small_instance)
        validate_continuous_schedule(sched)
        np.testing.assert_allclose(
            sched.completion_times(), result.completion_times, rtol=1e-9
        )

    def test_empty_instance(self):
        result = best_greedy_schedule(Instance(P=1, tasks=[]))
        assert result.order == ()
        assert result.objective == 0.0

    def test_falls_back_to_local_search(self, rng):
        inst = random_instance(rng, n=9, P=4.0)
        result = best_greedy_schedule(inst, exhaustive_limit=6, local_search_restarts=1)
        assert not result.exhaustive
        assert len(result.order) == 9

    def test_exhaustive_values_dictionary(self):
        inst = Instance(P=2, tasks=[Task(1, 1, 1), Task(2, 1, 2)])
        values = exhaustive_greedy_values(inst)
        assert set(values) == {(0, 1), (1, 0)}
        assert all(v > 0 for v in values.values())


class TestLocalSearch:
    def test_no_worse_than_smith_seed(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=7, P=3.0)
            smith_value = float(
                np.dot(
                    inst.weights, greedy_completion_times(inst, inst.smith_order())
                )
            )
            result = local_search_greedy_schedule(inst, restarts=2, rng=rng)
            assert result.objective <= smith_value + 1e-9

    def test_matches_exhaustive_on_small_instances(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            exhaustive = best_greedy_schedule(inst)
            local = local_search_greedy_schedule(inst, restarts=3, rng=rng)
            # Pairwise-swap local search is not guaranteed optimal, but on
            # 4-task instances with 3 restarts it should be close.
            assert local.objective <= exhaustive.objective * 1.05 + 1e-9
