"""Fault-injection harness for the cluster and service chaos tests.

Spawns *real* ``malleable-repro workers`` / ``serve`` subprocesses on
localhost ports, parses the addresses they print, and provides the murder
weapons the chaos suite needs: ``SIGKILL`` a node mid-sweep, launch a
straggler that sleeps past the coordinator's cell timeout
(``chaos_delay``), a node that dies with ``os._exit`` upon receiving
its N-th job (``chaos_die_after`` — deterministic mid-cell loss, no reply,
no cleanup), or a durable scheduling server that can be SIGKILLed
mid-journal-write and restarted on the same port from the same journal
(:class:`ServerProcess`).  Everything is bounded by timeouts so a
regression hangs for seconds, not forever.

Usage::

    with WorkerFleet(count=3) as fleet:
        ctx = ExecutionContext(backend="cluster", hosts=fleet.hosts)
        ...
        fleet.kill(0)           # SIGKILL one node

    with ServerProcess(journal_dir) as server:
        ...                      # NDJSON clients against server.port
        server.kill()            # SIGKILL: torn journal tails are fair game
        server.start()           # restart: recovers snapshot + journal
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["WorkerFleet", "ServerProcess", "spawn_worker", "free_port", "REPO_SRC"]

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_ADDRESS_RE = re.compile(r"cluster worker (\S+) listening on (\S+:\d+)")

#: Generous per-operation bound: chaos tests must fail, not hang.
START_TIMEOUT = 30.0


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def spawn_worker(
    count: int = 1,
    chaos_delay: float = 0.0,
    chaos_die_after: int = 0,
) -> "tuple[subprocess.Popen, list[str]]":
    """Launch one ``workers`` subprocess; returns (process, addresses).

    The process hosts ``count`` worker nodes on ephemeral ports (children of
    the subprocess when ``count > 1``); addresses are parsed from its
    stdout.  Chaos knobs apply to every node in the process.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "workers",
        "--port",
        "0",
        "--count",
        str(count),
    ]
    if chaos_delay:
        command += ["--chaos-delay", str(chaos_delay)]
    if chaos_die_after:
        command += ["--chaos-die-after", str(chaos_die_after)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=_worker_env()
    )
    addresses: "list[str]" = []
    deadline = time.monotonic() + START_TIMEOUT
    assert process.stdout is not None
    while len(addresses) < count:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError(
                f"worker process printed {len(addresses)}/{count} addresses "
                f"within {START_TIMEOUT}s"
            )
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"worker process exited early (rc={process.poll()}) after "
                f"{len(addresses)}/{count} addresses"
            )
        match = _ADDRESS_RE.search(line)
        if match:
            addresses.append(match.group(2))
    return process, addresses


class WorkerFleet:
    """A disposable fleet of localhost worker processes (context manager).

    One subprocess per node so a single node can be killed without touching
    its siblings.  Per-node chaos knobs: ``delays[i]`` /
    ``die_after[i]`` map onto ``--chaos-delay`` / ``--chaos-die-after`` of
    node ``i``.
    """

    def __init__(
        self,
        count: int = 2,
        delays: "dict[int, float] | None" = None,
        die_after: "dict[int, int] | None" = None,
    ):
        self.count = count
        self.delays = dict(delays or {})
        self.die_after = dict(die_after or {})
        self.processes: "list[subprocess.Popen]" = []
        self.hosts: "list[str]" = []

    def __enter__(self) -> "WorkerFleet":
        try:
            for index in range(self.count):
                process, addresses = spawn_worker(
                    count=1,
                    chaos_delay=self.delays.get(index, 0.0),
                    chaos_die_after=self.die_after.get(index, 0),
                )
                self.processes.append(process)
                self.hosts.extend(addresses)
        except BaseException:
            self.close()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def kill(self, index: int) -> None:
        """``SIGKILL`` node ``index`` — the hardest crash available."""
        self.processes[index].kill()
        self.processes[index].wait(timeout=START_TIMEOUT)

    def terminate(self, index: int) -> int:
        """``SIGTERM`` node ``index`` (graceful drain); returns its exit code."""
        self.processes[index].terminate()
        return self.processes[index].wait(timeout=START_TIMEOUT)

    def alive(self, index: int) -> bool:
        return self.processes[index].poll() is None

    def close(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.kill()
        for process in self.processes:
            try:
                process.wait(timeout=START_TIMEOUT)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                pass
            if process.stdout is not None:
                process.stdout.close()
        self.processes.clear()
        self.hosts.clear()


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve a port number a (re)started server can bind."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


class ServerProcess:
    """A killable, restartable ``malleable-repro serve`` subprocess.

    The port is pre-picked so a restarted server is reachable at the same
    address the clients keep retrying against, and the journal directory is
    reused across restarts — :meth:`kill` followed by :meth:`start` is the
    crash-recovery cycle the durability tests drive.  ``--virtual-time`` is
    on by default so trajectories are deterministic functions of the
    requests, not of wall-clock race outcomes.
    """

    def __init__(
        self,
        journal_dir: "str | os.PathLike[str]",
        port: "int | None" = None,
        virtual_time: bool = True,
        extra_args: "tuple[str, ...]" = (),
    ):
        self.journal_dir = str(journal_dir)
        self.port = free_port() if port is None else int(port)
        self.virtual_time = virtual_time
        self.extra_args = list(extra_args)
        self.process: "subprocess.Popen | None" = None

    def start(self) -> "ServerProcess":
        """Launch the server; blocks until it prints its listening banner."""
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(self.port),
            "--journal-dir",
            self.journal_dir,
        ]
        if self.virtual_time:
            command.append("--virtual-time")
        command += self.extra_args
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, text=True, env=_worker_env()
        )
        deadline = time.monotonic() + START_TIMEOUT
        assert self.process.stdout is not None
        while True:
            if time.monotonic() > deadline:
                self.process.kill()
                raise TimeoutError(f"server not listening within {START_TIMEOUT}s")
            line = self.process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server exited early (rc={self.process.poll()})"
                )
            if "listening on" in line:
                return self

    def kill(self) -> None:
        """``SIGKILL`` — no flush, no snapshot, torn journal tails welcome."""
        assert self.process is not None
        self.process.kill()
        self.process.wait(timeout=START_TIMEOUT)
        if self.process.stdout is not None:
            self.process.stdout.close()

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def close(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.kill()
        self.process = None

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
