"""Fault-injection harness for the cluster backend tests.

Spawns *real* ``malleable-repro workers`` subprocesses on localhost
ephemeral ports, parses the addresses they print, and provides the murder
weapons the chaos suite needs: ``SIGKILL`` a node mid-sweep, launch a
straggler that sleeps past the coordinator's cell timeout
(``chaos_delay``), or a node that dies with ``os._exit`` upon receiving
its N-th job (``chaos_die_after`` — deterministic mid-cell loss, no reply,
no cleanup).  Everything is bounded by timeouts so a regression hangs for
seconds, not forever.

Usage::

    with WorkerFleet(count=3) as fleet:
        ctx = ExecutionContext(backend="cluster", hosts=fleet.hosts)
        ...
        fleet.kill(0)           # SIGKILL one node
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["WorkerFleet", "spawn_worker", "REPO_SRC"]

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_ADDRESS_RE = re.compile(r"cluster worker (\S+) listening on (\S+:\d+)")

#: Generous per-operation bound: chaos tests must fail, not hang.
START_TIMEOUT = 30.0


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def spawn_worker(
    count: int = 1,
    chaos_delay: float = 0.0,
    chaos_die_after: int = 0,
) -> "tuple[subprocess.Popen, list[str]]":
    """Launch one ``workers`` subprocess; returns (process, addresses).

    The process hosts ``count`` worker nodes on ephemeral ports (children of
    the subprocess when ``count > 1``); addresses are parsed from its
    stdout.  Chaos knobs apply to every node in the process.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "workers",
        "--port",
        "0",
        "--count",
        str(count),
    ]
    if chaos_delay:
        command += ["--chaos-delay", str(chaos_delay)]
    if chaos_die_after:
        command += ["--chaos-die-after", str(chaos_die_after)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=_worker_env()
    )
    addresses: "list[str]" = []
    deadline = time.monotonic() + START_TIMEOUT
    assert process.stdout is not None
    while len(addresses) < count:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError(
                f"worker process printed {len(addresses)}/{count} addresses "
                f"within {START_TIMEOUT}s"
            )
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"worker process exited early (rc={process.poll()}) after "
                f"{len(addresses)}/{count} addresses"
            )
        match = _ADDRESS_RE.search(line)
        if match:
            addresses.append(match.group(2))
    return process, addresses


class WorkerFleet:
    """A disposable fleet of localhost worker processes (context manager).

    One subprocess per node so a single node can be killed without touching
    its siblings.  Per-node chaos knobs: ``delays[i]`` /
    ``die_after[i]`` map onto ``--chaos-delay`` / ``--chaos-die-after`` of
    node ``i``.
    """

    def __init__(
        self,
        count: int = 2,
        delays: "dict[int, float] | None" = None,
        die_after: "dict[int, int] | None" = None,
    ):
        self.count = count
        self.delays = dict(delays or {})
        self.die_after = dict(die_after or {})
        self.processes: "list[subprocess.Popen]" = []
        self.hosts: "list[str]" = []

    def __enter__(self) -> "WorkerFleet":
        try:
            for index in range(self.count):
                process, addresses = spawn_worker(
                    count=1,
                    chaos_delay=self.delays.get(index, 0.0),
                    chaos_die_after=self.die_after.get(index, 0),
                )
                self.processes.append(process)
                self.hosts.extend(addresses)
        except BaseException:
            self.close()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def kill(self, index: int) -> None:
        """``SIGKILL`` node ``index`` — the hardest crash available."""
        self.processes[index].kill()
        self.processes[index].wait(timeout=START_TIMEOUT)

    def terminate(self, index: int) -> int:
        """``SIGTERM`` node ``index`` (graceful drain); returns its exit code."""
        self.processes[index].terminate()
        return self.processes[index].wait(timeout=START_TIMEOUT)

    def alive(self, index: int) -> bool:
        return self.processes[index].poll() is None

    def close(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.kill()
        for process in self.processes:
            try:
                process.wait(timeout=START_TIMEOUT)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                pass
            if process.stdout is not None:
                process.stdout.close()
        self.processes.clear()
        self.hosts.clear()
