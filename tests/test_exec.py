"""Tests for the ExecutionContext and the InstanceBatch struct-of-arrays type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.cache import ResultCache
from repro.batch.runner import BatchRunner
from repro.core.batch import InstanceBatch
from repro.core.exceptions import InvalidInstanceError
from repro.core.instance import Instance, Task
from repro.exec import BACKENDS, ExecutionContext
from repro.workloads.generators import bandwidth_scenario_instances
from repro.workloads.suites import get_suite

# --------------------------------------------------------------------- #
# InstanceBatch
# --------------------------------------------------------------------- #


class TestInstanceBatch:
    def test_lossless_roundtrip_including_names(self):
        insts = list(bandwidth_scenario_instances(3, 2, rng=np.random.default_rng(0)))
        insts.append(Instance(P=2.0, tasks=[Task(1.0, 0.5, 1.5, name=None)]))
        back = InstanceBatch.from_instances(insts).to_instances()
        assert back == insts  # Instance equality covers P and every Task field
        assert [t.name for t in back[0].tasks] == [t.name for t in insts[0].tasks]

    def test_padding_convention(self):
        insts = [
            Instance.from_arrays(P=2.0, volumes=[1.0, 2.0, 3.0]),
            Instance.from_arrays(P=1.0, volumes=[1.0]),
        ]
        batch = InstanceBatch.from_instances(insts)
        assert batch.batch_size == 2 and batch.n_max == 3
        assert list(batch.counts) == [3, 1]
        assert batch.volumes[1, 1] == 0.0
        assert batch.weights[1, 2] == 0.0
        assert batch.deltas[1, 1] > 0.0
        assert not batch.mask[1, 1]

    def test_from_arrays_normalises_padding(self):
        batch = InstanceBatch.from_arrays(
            P=[2.0],
            volumes=[[1.0, 9.0]],
            weights=[[1.0, 9.0]],
            deltas=[[1.0, 9.0]],
            mask=[[True, False]],
        )
        assert batch.volumes[0, 1] == 0.0
        assert batch.weights[0, 1] == 0.0
        assert batch.deltas[0, 1] == 1.0
        assert batch.instance(0).n == 1

    def test_from_arrays_validates_shapes(self):
        with pytest.raises(InvalidInstanceError):
            InstanceBatch.from_arrays(P=[1.0], volumes=[[1.0]], weights=[[1.0, 2.0]], deltas=[[1.0]])
        with pytest.raises(InvalidInstanceError):
            InstanceBatch.from_arrays(
                P=[1.0, 2.0], volumes=[[1.0]], weights=[[1.0]], deltas=[[1.0]]
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            InstanceBatch.from_instances([])

    def test_suite_generate_batch_matches_generate(self):
        suite = get_suite("cluster")
        batch = suite.generate_batch(5, count=4, seed=3)
        assert isinstance(batch, InstanceBatch)
        assert batch.to_instances() == list(suite.generate(5, count=4, seed=3))


# --------------------------------------------------------------------- #
# ExecutionContext
# --------------------------------------------------------------------- #


def _double(x):
    """Module-level so it pickles into worker processes."""
    return 2 * x


class TestExecutionContext:
    def test_defaults_are_serial(self):
        ctx = ExecutionContext()
        assert ctx.backend == "serial" and not ctx.vectorized
        assert ctx.runner is None and ctx.cache is None
        assert ctx.map(_double, [1, 2]) == [2, 4]

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            ExecutionContext(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            ExecutionContext(workers=-1)
        assert set(BACKENDS) == {"serial", "vectorized", "process-pool", "cluster"}

    def test_workers_promote_serial_to_process_pool(self):
        # A context that reports "serial" must never shard: asking for
        # workers (or handing over a runner) selects the pool backend.
        with ExecutionContext(workers=2) as ctx:
            assert ctx.backend == "process-pool"
            assert ctx.runner is not None
        runner = BatchRunner(workers=2, executor="thread")
        ctx = ExecutionContext(runner=runner)
        assert ctx.backend == "process-pool"
        runner.close()
        # Serial without workers stays a plain in-process loop, and may map
        # non-picklable functions.
        assert ExecutionContext().map(lambda x: x * 2, [1, 2]) == [2, 4]

    def test_workers_build_a_runner(self):
        with ExecutionContext(backend="vectorized", workers=2) as ctx:
            assert ctx.vectorized
            assert isinstance(ctx.runner, BatchRunner)
            assert ctx.runner.workers == 2
            assert ctx.map(_double, [1, 2, 3]) == [2, 4, 6]
        # close() shut the owned runner's pool down
        assert ctx.runner._pool is None

    def test_explicit_runner_is_not_owned(self):
        runner = BatchRunner(workers=2, executor="thread")
        runner.map(_double, [1, 2])  # spin the pool up
        ctx = ExecutionContext(backend="process-pool", runner=runner)
        ctx.close()
        assert runner._pool is not None  # the context must not close it
        runner.close()

    def test_rng_is_deterministic_and_salted(self):
        ctx = ExecutionContext(seed=5)
        assert ctx.rng().uniform() == np.random.default_rng(5).uniform()
        assert ctx.rng(3).uniform() == np.random.default_rng(8).uniform()

    def test_scale(self):
        assert ExecutionContext().scale(10, 1000) == 10
        assert ExecutionContext(paper_scale=True).scale(10, 1000) == 1000
        assert ExecutionContext(paper_scale=True).scale(10) == 10

    def test_cached_without_cache_computes_every_time(self):
        ctx = ExecutionContext()
        calls = []
        for _ in range(2):
            ctx.cached("sweep", {"n": 1}, lambda: calls.append(1) or "v")
        assert len(calls) == 2

    def test_cached_with_cache_memoizes_by_seed(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return "v"

        ctx = ExecutionContext(cache=cache)
        assert ctx.cached("sweep", {"n": 1}, compute) == "v"
        assert ctx.cached("sweep", {"n": 1}, compute) == "v"
        assert len(calls) == 1
        # A different seed must not collide with the first entry.
        other = ExecutionContext(seed=9, cache=cache)
        other.cached("sweep", {"n": 1}, compute)
        assert len(calls) == 2

    def test_cached_keys_include_the_resolved_lp_backend(self):
        # Regression test: results computed with one LP solver must never be
        # served to a run using another solver from a shared cache — the old
        # keys ignored the selection entirely.
        cache = ResultCache()
        values = iter(["scipy-result", "simplex-result", "kernel-result", "unused"])

        def compute():
            return next(values)

        scipy_ctx = ExecutionContext(cache=cache, lp_backend="scipy")
        simplex_ctx = ExecutionContext(cache=cache, lp_backend="simplex")
        assert scipy_ctx.cached("sweep", {"n": 1}, compute) == "scipy-result"
        assert simplex_ctx.cached("sweep", {"n": 1}, compute) == "simplex-result"
        # Each selection keeps hitting its own entry afterwards.
        assert scipy_ctx.cached("sweep", {"n": 1}, compute) == "scipy-result"
        assert simplex_ctx.cached("sweep", {"n": 1}, compute) == "simplex-result"
        # 'auto' keys on what it resolves to: a serial auto context shares
        # the scipy entry, a vectorized auto context gets its own (kernel).
        serial_auto = ExecutionContext(cache=cache)
        vectorized_auto = ExecutionContext(cache=cache, backend="vectorized")
        assert serial_auto.cached("sweep", {"n": 1}, compute) == "scipy-result"
        assert vectorized_auto.cached("sweep", {"n": 1}, compute) == "kernel-result"
        # A caller-supplied params entry cannot shadow the context's solver:
        # the bogus 'batch' value is overwritten, so this hits the scipy entry.
        assert (
            scipy_ctx.cached("sweep", {"n": 1, "lp_backend": "batch"}, compute) == "scipy-result"
        )

    def test_from_options_lp_backend(self):
        assert ExecutionContext.from_options().lp_backend == "auto"
        ctx = ExecutionContext.from_options(lp_backend="simplex")
        assert ctx.lp_backend == "simplex"
        assert ctx.resolved_lp_backend() == "simplex"

    def test_close_saves_backed_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        ctx = ExecutionContext(cache=ResultCache(path=path))
        ctx.cached("sweep", {"n": 1}, lambda: [1.0, 2.0])
        ctx.close()
        reloaded = ResultCache(path=path)
        assert len(reloaded) == 1

    def test_from_options_backend_mapping(self):
        assert ExecutionContext.from_options().backend == "serial"
        assert ExecutionContext.from_options(batch=True).backend == "vectorized"
        with ExecutionContext.from_options(workers=2) as ctx:
            assert ctx.backend == "process-pool"
        with ExecutionContext.from_options(batch=True, workers=2) as ctx:
            assert ctx.backend == "vectorized" and ctx.runner is not None

    def test_from_options_cache_dir(self, tmp_path):
        target = tmp_path / "deep" / "cache"
        ctx = ExecutionContext.from_options(cache_dir=target)
        assert target.is_dir()
        assert ctx.cache is not None
        ctx.cached("sweep", {}, lambda: 1)
        ctx.close()
        assert (target / "results-cache.json").is_file()

    def test_legacy_kwargs_shim_is_gone(self):
        # The deprecation cycle is over: the translation classmethod no
        # longer exists, and the registry refuses the legacy spelling with
        # a TypeError that names the ctx= replacement.
        assert not hasattr(ExecutionContext, "from_legacy_kwargs")
        from repro.experiments.registry import run_experiment

        with pytest.raises(TypeError, match=r"ctx=ExecutionContext\(seed=\.\.\.\)"):
            run_experiment("E5", seed=3)


class TestContextDrivesExperiments:
    def test_process_pool_context_matches_serial_rows(self):
        from repro.experiments import run_experiment

        kwargs = dict(sizes=(2, 3), count=3, families=("uniform",))
        serial = run_experiment("E1", **kwargs)
        with ExecutionContext(backend="process-pool", workers=2) as ctx:
            pooled = run_experiment("E1", ctx=ctx, **kwargs)
        assert serial.rows == pooled.rows

    def test_seed_changes_results(self):
        from repro.experiments import run_experiment

        kwargs = dict(small_sizes=(3,), small_count=3, large_sizes=(), large_count=0)
        a = run_experiment("E5", ctx=ExecutionContext(seed=0), **kwargs)
        b = run_experiment("E5", ctx=ExecutionContext(seed=1), **kwargs)
        assert a.rows != b.rows

    def test_no_experiment_takes_legacy_execution_kwargs(self):
        # The acceptance criterion of the refactor: no experiment signature
        # carries per-experiment execution options any more; execution travels
        # only through ctx.
        import inspect

        from repro.experiments.registry import EXPERIMENTS

        for spec in EXPERIMENTS.values():
            parameters = inspect.signature(spec.run).parameters
            assert "ctx" in parameters, spec.experiment_id
            for legacy in ("runner", "use_batch", "cache", "seed", "paper_scale"):
                assert legacy not in parameters, (spec.experiment_id, legacy)

    def test_vectorized_context_runs_every_experiment(self):
        # Every registered experiment accepts the same vectorized context
        # (tiny parameters keep this fast; E5/E6/E7 actually hit the kernels).
        from repro.experiments.report import run_all

        small = {
            "E1": dict(sizes=(2,), count=2, families=("uniform",)),
            "E2": dict(sizes=(3,), count=2, max_orders=10),
            "E3": dict(sizes=(2,), count=2, five_task_count=1),
            "E4": dict(sizes=(2,), count=2),
            "E5": dict(small_sizes=(2,), small_count=2, large_sizes=(6,), large_count=2),
            "E6": dict(sizes=(5,), count=2),
            "E7": dict(sizes=(10,), lp_sizes=(), simplex_sizes=(), batch_sizes=(4,), batch_task_count=4),
            "E8": dict(worker_counts=(4,), count=2),
            "E9": dict(small_sizes=(3,), large_sizes=(), count=2),
        }
        with ExecutionContext(backend="vectorized") as ctx:
            for experiment_id, params in small.items():
                (result,) = run_all(experiment_ids=[experiment_id], ctx=ctx, **params)
                assert result.experiment_id == experiment_id
