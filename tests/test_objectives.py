"""Unit tests for the objective functions (repro.core.objectives)."""

from __future__ import annotations

import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidScheduleError
from repro.core.objectives import (
    makespan,
    max_lateness,
    total_completion_time,
    weighted_completion_time,
    weighted_flow_time,
    weighted_throughput,
)


@pytest.fixture
def instance() -> Instance:
    return Instance(P=2, tasks=[Task(1, weight=2), Task(2, weight=3), Task(3, weight=1)])


class TestWeightedCompletionTime:
    def test_value(self, instance):
        assert weighted_completion_time(instance, [1, 2, 3]) == pytest.approx(2 + 6 + 3)

    def test_shape_checked(self, instance):
        with pytest.raises(InvalidScheduleError):
            weighted_completion_time(instance, [1, 2])

    def test_negative_rejected(self, instance):
        with pytest.raises(InvalidScheduleError):
            weighted_completion_time(instance, [1, -2, 3])


class TestOtherObjectives:
    def test_total_completion_time(self, instance):
        assert total_completion_time(instance, [1, 2, 3]) == pytest.approx(6)

    def test_makespan(self, instance):
        assert makespan(instance, [1, 5, 3]) == pytest.approx(5)

    def test_makespan_empty(self):
        empty = Instance(P=1, tasks=[])
        assert makespan(empty, []) == 0.0

    def test_max_lateness(self, instance):
        assert max_lateness(instance, [1, 5, 3], deadlines=[2, 2, 2]) == pytest.approx(3)

    def test_max_lateness_negative_when_all_early(self, instance):
        assert max_lateness(instance, [1, 1, 1], deadlines=[4, 4, 4]) == pytest.approx(-3)

    def test_max_lateness_shape_check(self, instance):
        with pytest.raises(InvalidScheduleError):
            max_lateness(instance, [1, 2, 3], deadlines=[1])

    def test_weighted_throughput_equivalence(self, instance):
        # sum w_i (T - C_i) = T * sum(w) - sum(w C): maximising it is the same
        # as minimising the weighted completion time.
        T = 10.0
        completions = [1, 2, 3]
        expected = T * instance.total_weight - weighted_completion_time(instance, completions)
        assert weighted_throughput(instance, completions, T) == pytest.approx(expected)

    def test_weighted_flow_time_defaults_to_completion_time(self, instance):
        assert weighted_flow_time(instance, [1, 2, 3]) == pytest.approx(
            weighted_completion_time(instance, [1, 2, 3])
        )

    def test_weighted_flow_time_with_releases(self, instance):
        value = weighted_flow_time(instance, [2, 3, 4], release_times=[1, 1, 1])
        assert value == pytest.approx(2 * 1 + 3 * 2 + 1 * 3)

    def test_weighted_flow_time_release_shape(self, instance):
        with pytest.raises(InvalidScheduleError):
            weighted_flow_time(instance, [1, 2, 3], release_times=[1])
