"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, context_from_args, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "E1", "--seed", "7"])
        assert args.command == "run"
        assert args.experiments == ["E1"]
        assert args.seed == 7
        assert args.paper_scale is False

    def test_run_accepts_multiple_experiments(self):
        args = build_parser().parse_args(["run", "E1", "E5", "E8"])
        assert args.experiments == ["E1", "E5", "E8"]

    def test_run_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_all_command_with_output(self):
        args = build_parser().parse_args(["all", "--output", "report.md", "--paper-scale"])
        assert args.command == "all"
        assert args.output == "report.md"
        assert args.paper_scale is True

    def test_batch_workers_and_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "E5", "--batch", "--workers", "4", "--cache-dir", "/tmp/x"]
        )
        assert args.batch is True
        assert args.workers == 4
        assert args.cache_dir == "/tmp/x"
        args = build_parser().parse_args(["all"])
        assert args.batch is False
        assert args.workers == 0
        assert args.cache_dir is None

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestContextFromArgs:
    def test_serial_by_default(self):
        ctx = context_from_args(build_parser().parse_args(["run", "E1", "--seed", "7"]))
        assert ctx.backend == "serial"
        assert ctx.seed == 7
        assert ctx.runner is None and ctx.cache is None

    def test_batch_and_workers_build_vectorized_context_with_pool(self):
        args = build_parser().parse_args(["run", "E5", "--batch", "--workers", "3"])
        ctx = context_from_args(args)
        try:
            assert ctx.backend == "vectorized"
            assert ctx.vectorized is True
            assert ctx.runner is not None and ctx.runner.workers == 3
        finally:
            ctx.close()

    def test_workers_alone_build_process_pool_context(self):
        args = build_parser().parse_args(["run", "E5", "--workers", "2"])
        ctx = context_from_args(args)
        try:
            assert ctx.backend == "process-pool"
            assert ctx.runner is not None and ctx.runner.workers == 2
        finally:
            ctx.close()

    def test_cache_dir_attaches_persistent_cache(self, tmp_path):
        args = build_parser().parse_args(["run", "E1", "--cache-dir", str(tmp_path / "c")])
        ctx = context_from_args(args)
        assert ctx.cache is not None
        assert (tmp_path / "c").is_dir()


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E9" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_run_multiple_experiments_prints_each(self, capsys):
        assert main(["run", "E3", "E3"]) == 0
        out = capsys.readouterr().out
        assert out.count("[E3]") == 2

    def test_cache_dir_persists_across_invocations(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        assert main(["run", "E3", "--cache-dir", str(cache_dir)]) == 0
        cache_file = cache_dir / "results-cache.json"
        assert cache_file.is_file()
        json.loads(cache_file.read_text())  # valid JSON payload
        # A second invocation reloads the persisted cache without error.
        assert main(["run", "E3", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()


class TestProfile:
    def test_profile_flags_parse(self):
        args = build_parser().parse_args(
            ["profile", "E7", "--top", "10", "--sort", "tottime", "--batch"]
        )
        assert args.command == "profile"
        assert args.target == "E7"
        assert args.top == 10 and args.sort == "tottime" and args.batch is True

    def test_shm_flag_parses_and_reaches_the_context(self):
        args = build_parser().parse_args(["run", "E1", "--workers", "2", "--shm"])
        ctx = context_from_args(args)
        try:
            assert ctx.shm is True and ctx.backend == "process-pool"
        finally:
            ctx.close()

    def test_profile_scenario_prints_table(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "\n".join(
                [
                    '[scenario]',
                    'name = "tiny-profile"',
                    'generator = "uniform_instances"',
                    'count = 2',
                    'policies = ["WDEQ"]',
                    '[scenario.grid]',
                    'n = [3]',
                    "",
                ]
            )
        )
        assert main(["profile", str(spec), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profile of" in out
        assert "cumulative" in out

    def test_profile_dumps_raw_stats(self, tmp_path, capsys):
        import pstats

        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "\n".join(
                [
                    '[scenario]',
                    'name = "tiny-profile-dump"',
                    'generator = "uniform_instances"',
                    'count = 1',
                    'policies = ["WDEQ"]',
                    '[scenario.grid]',
                    'n = [2]',
                    "",
                ]
            )
        )
        dump = tmp_path / "profile.pstats"
        assert main(["profile", str(spec), "--profile-output", str(dump)]) == 0
        capsys.readouterr()
        pstats.Stats(str(dump))  # loads back as a valid stats file

    def test_profile_compare_kernels_prints_both_columns(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "\n".join(
                [
                    '[scenario]',
                    'name = "tiny-profile-compare"',
                    'generator = "uniform_instances"',
                    'count = 1',
                    'policies = ["WDEQ"]',
                    '[scenario.grid]',
                    'n = [2]',
                    "",
                ]
            )
        )
        assert main(["profile", str(spec), "--compare-kernels", "--top", "5", "--batch"]) == 0
        out = capsys.readouterr().out
        assert "kernel comparison" in out
        assert "numpy cum (s)" in out and "compiled cum (s)" in out
        assert "total time:" in out


class TestKernelFlags:
    def test_kernel_and_precision_parse_and_reach_the_context(self):
        args = build_parser().parse_args(
            ["run", "E1", "--kernel", "numpy", "--precision", "float32"]
        )
        assert args.kernel == "numpy" and args.precision == "float32"
        ctx = context_from_args(args)
        assert ctx.kernel == "numpy" and ctx.precision == "float32"

    def test_kernel_defaults(self):
        ctx = context_from_args(build_parser().parse_args(["all"]))
        assert ctx.kernel == "auto" and ctx.precision == "float64"

    def test_unknown_kernel_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--kernel", "cuda"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--precision", "float16"])
