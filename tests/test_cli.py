"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "E1", "--seed", "7"])
        assert args.command == "run"
        assert args.experiment == "E1"
        assert args.seed == 7
        assert args.paper_scale is False

    def test_all_command_with_output(self):
        args = build_parser().parse_args(["all", "--output", "report.md", "--paper-scale"])
        assert args.command == "all"
        assert args.output == "report.md"
        assert args.paper_scale is True

    def test_batch_and_workers_flags(self):
        args = build_parser().parse_args(["run", "E5", "--batch", "--workers", "4"])
        assert args.batch is True
        assert args.workers == 4
        args = build_parser().parse_args(["all"])
        assert args.batch is False
        assert args.workers == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E9" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_execution_kwargs_build_runner(self):
        from repro.cli import _execution_kwargs, build_parser

        args = build_parser().parse_args(["run", "E5", "--workers", "3", "--batch"])
        kwargs = _execution_kwargs(args)
        assert kwargs["use_batch"] is True
        assert kwargs["runner"].workers == 3
