"""Tests for the makespan and maximum-lateness solvers (Table I rows)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidScheduleError
from repro.core.objectives import max_lateness
from repro.core.validation import validate_column_schedule
from repro.algorithms.lateness import deadlines_feasible, minimize_max_lateness
from repro.algorithms.makespan import makespan_schedule, minimal_makespan
from tests.conftest import random_instance


class TestMakespan:
    def test_work_bound_dominates(self):
        inst = Instance(P=2, tasks=[Task(4, delta=2), Task(4, delta=2)])
        assert minimal_makespan(inst) == pytest.approx(4.0)

    def test_height_bound_dominates(self):
        inst = Instance(P=8, tasks=[Task(4, delta=1), Task(1, delta=8)])
        assert minimal_makespan(inst) == pytest.approx(4.0)

    def test_schedule_achieves_optimum_and_is_valid(self, rng):
        for _ in range(10):
            inst = random_instance(rng, n=5, P=3.0)
            sched = makespan_schedule(inst)
            validate_column_schedule(sched)
            assert sched.makespan() == pytest.approx(minimal_makespan(inst))

    def test_empty_instance(self):
        inst = Instance(P=1, tasks=[])
        assert minimal_makespan(inst) == 0.0
        assert makespan_schedule(inst).n == 0

    def test_makespan_is_a_true_lower_bound(self, rng):
        """No valid schedule can beat the closed form (checked via WF feasibility)."""
        from repro.algorithms.water_filling import water_filling_schedule
        from repro.core.exceptions import InfeasibleScheduleError

        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            cmax = minimal_makespan(inst)
            with pytest.raises(InfeasibleScheduleError):
                water_filling_schedule(inst, np.full(inst.n, cmax * 0.95))
            # At the optimum itself the deadlines are feasible.
            validate_column_schedule(
                water_filling_schedule(inst, np.full(inst.n, cmax * (1 + 1e-9)))
            )


class TestLateness:
    def test_feasibility_helper(self):
        inst = Instance(P=2, tasks=[Task(2, delta=1), Task(2, delta=2)])
        assert deadlines_feasible(inst, [2.0, 2.0])
        assert not deadlines_feasible(inst, [1.0, 1.0])

    def test_single_task(self):
        inst = Instance(P=2, tasks=[Task(volume=2, delta=1)])
        result = minimize_max_lateness(inst, deadlines=[1.0])
        assert result.lateness == pytest.approx(1.0, abs=1e-6)

    def test_negative_lateness_when_deadlines_loose(self):
        # Both unit tasks can finish at t = 1, so with deadlines at 5 the
        # optimal maximum lateness is exactly -4.
        inst = Instance(P=2, tasks=[Task(1, delta=1), Task(1, delta=1)])
        result = minimize_max_lateness(inst, deadlines=[5.0, 5.0])
        assert result.lateness == pytest.approx(-4.0, abs=1e-6)

    def test_result_schedule_achieves_reported_lateness(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            deadlines = rng.uniform(0.5, 2.0, inst.n)
            result = minimize_max_lateness(inst, deadlines)
            validate_column_schedule(result.schedule)
            achieved = max_lateness(
                inst, result.schedule.completion_times_by_task(), deadlines
            )
            assert achieved <= result.lateness + 1e-6

    def test_lateness_is_minimal(self, rng):
        """Slightly tightening the returned lateness makes the deadlines infeasible."""
        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            deadlines = rng.uniform(0.5, 2.0, inst.n)
            result = minimize_max_lateness(inst, deadlines, tolerance=1e-9)
            assert not deadlines_feasible(inst, np.asarray(deadlines) + result.lateness - 1e-3)

    def test_wrong_deadline_count(self, small_instance):
        with pytest.raises(InvalidScheduleError):
            minimize_max_lateness(small_instance, [1.0])

    def test_empty_instance(self):
        result = minimize_max_lateness(Instance(P=1, tasks=[]), [])
        assert result.lateness == 0.0
