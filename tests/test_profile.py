"""Tests for the capacity profile used by the greedy scheduler."""

from __future__ import annotations

import pytest

from repro.algorithms.profile import CapacityProfile
from repro.core.exceptions import InvalidScheduleError, SimulationError


class TestCapacityProfile:
    def test_initial_capacity(self):
        profile = CapacityProfile(3.0)
        assert profile.capacity_at(0.0) == 3.0
        assert profile.capacity_at(100.0) == 3.0
        assert profile.capacity_at(-1.0) == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(InvalidScheduleError):
            CapacityProfile(0.0)

    def test_allocate_full_speed(self):
        profile = CapacityProfile(2.0)
        result = profile.allocate_greedily(volume=4.0, delta=2.0)
        assert result.completion_time == pytest.approx(2.0)
        assert result.volume() == pytest.approx(4.0)
        assert profile.capacity_at(1.0) == pytest.approx(0.0)
        assert profile.capacity_at(3.0) == pytest.approx(2.0)

    def test_allocate_respects_delta(self):
        profile = CapacityProfile(4.0)
        result = profile.allocate_greedily(volume=2.0, delta=1.0)
        assert result.completion_time == pytest.approx(2.0)
        assert profile.capacity_at(1.0) == pytest.approx(3.0)

    def test_second_task_uses_leftover_then_more(self):
        profile = CapacityProfile(2.0)
        profile.allocate_greedily(volume=2.0, delta=1.0)  # occupies 1 proc until t=2
        result = profile.allocate_greedily(volume=3.0, delta=2.0)
        # rate 1 until t=2 (volume 2), then rate 2: completes at 2.5.
        assert result.completion_time == pytest.approx(2.5)
        assert result.volume() == pytest.approx(3.0)

    def test_release_time_delays_start(self):
        profile = CapacityProfile(1.0)
        result = profile.allocate_greedily(volume=1.0, delta=1.0, release_time=2.0)
        assert result.completion_time == pytest.approx(3.0)
        assert result.pieces[0][0] == pytest.approx(2.0)

    def test_zero_volume(self):
        profile = CapacityProfile(1.0)
        result = profile.allocate_greedily(volume=0.0, delta=1.0, release_time=1.5)
        assert result.completion_time == pytest.approx(1.5)
        assert result.pieces == ()

    def test_invalid_delta(self):
        profile = CapacityProfile(1.0)
        with pytest.raises(InvalidScheduleError):
            profile.allocate_greedily(volume=1.0, delta=0.0)

    def test_reserve_underflow_detected(self):
        profile = CapacityProfile(1.0)
        with pytest.raises(SimulationError):
            profile.reserve(0.0, 1.0, 2.0)

    def test_free_area_before(self):
        profile = CapacityProfile(2.0)
        profile.allocate_greedily(volume=2.0, delta=2.0)  # busy on [0, 1]
        assert profile.free_area_before(1.0) == pytest.approx(0.0)
        assert profile.free_area_before(2.0) == pytest.approx(2.0)
        assert profile.free_area_before(2.0, cap=1.0) == pytest.approx(1.0)

    def test_copy_is_independent(self):
        profile = CapacityProfile(2.0)
        clone = profile.copy()
        profile.allocate_greedily(volume=2.0, delta=2.0)
        assert clone.capacity_at(0.5) == pytest.approx(2.0)
        assert profile.capacity_at(0.5) == pytest.approx(0.0)

    def test_repr(self):
        assert "CapacityProfile" in repr(CapacityProfile(1.0))

    def test_many_allocations_keep_consistency(self, rng):
        profile = CapacityProfile(4.0)
        total = 0.0
        for _ in range(30):
            volume = float(rng.uniform(0.1, 2.0))
            delta = float(rng.uniform(0.2, 4.0))
            result = profile.allocate_greedily(volume=volume, delta=delta)
            assert result.volume() == pytest.approx(volume, rel=1e-9)
            total += volume
            # Capacity never negative anywhere.
            assert all(c >= -1e-9 for c in profile.capacities)
