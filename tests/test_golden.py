"""Golden-file regression suite for the E1–E9 experiment harness.

Canonical paper-scale-down summary tables live in ``tests/golden/E*.json``;
every test run re-executes the experiments with the same reduced parameters
and the same seed on each execution backend and compares the fresh tables
against the committed ones — headers exactly, numeric cells within loose
tolerances (the values chain LP solves and water-filling level searches, so
the last digits legitimately move across BLAS builds and backends).

The suite doubles as a backend-conformance harness: serial, vectorized and
(for a representative experiment) process-pool runs are all pinned against
*one* golden file, so a vectorized kernel drifting away from the scalar path
fails here even if its own unit tests pass.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.exec import ExecutionContext
from repro.experiments.registry import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Reduced parameters of the canonical runs — small enough for CI, large
#: enough to exercise every family/size branch of each experiment.
GOLDEN_PARAMS: dict[str, dict] = {
    "E1": dict(sizes=(2, 3), count=3, families=("uniform", "constant weight")),
    "E2": dict(sizes=(3, 4), count=3, max_orders=12, lp_sizes=(3,), lp_count=2, lp_orders=6),
    "E3": dict(sizes=(2, 3), count=3, five_task_count=1, lp_check_sizes=(2, 3), lp_check_count=3),
    "E4": dict(sizes=(2, 3), count=3),
    "E5": dict(small_sizes=(2, 3), small_count=3, large_sizes=(8,), large_count=2),
    "E6": dict(sizes=(5,), count=2),
    "E7": dict(sizes=(10,), lp_sizes=(5,), simplex_sizes=(), batch_sizes=()),
    "E8": dict(worker_counts=(5,), count=2),
    "E9": dict(small_sizes=(3,), large_sizes=(8,), count=2),
}

#: Experiments whose cells are wall-clock timings: only the table *structure*
#: (headers, row count, summary keys) is pinned, never the measured values.
VOLATILE = {"E7"}

EXPERIMENT_IDS = sorted(GOLDEN_PARAMS)


def run_golden(experiment_id: str, backend: str, workers: int = 0):
    """One canonical reduced run of ``experiment_id`` on ``backend``."""
    with ExecutionContext(seed=0, backend=backend, workers=workers) as ctx:
        return run_experiment(experiment_id, ctx=ctx, **GOLDEN_PARAMS[experiment_id])


def to_payload(result) -> dict:
    """The JSON-serialisable golden form of an :class:`ExperimentResult`."""
    return {
        "experiment_id": result.experiment_id,
        "headers": [str(h) for h in result.headers],
        "rows": [[cell for cell in row] for row in result.rows],
        "summary": dict(result.summary),
    }


def golden_path(experiment_id: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{experiment_id}.json"


def write_golden(result) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    with open(golden_path(result.experiment_id), "w", encoding="utf-8") as handle:
        json.dump(to_payload(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_golden(experiment_id: str) -> dict:
    path = golden_path(experiment_id)
    if not path.is_file():
        pytest.fail(
            f"missing golden file {path}; regenerate with "
            "`pytest tests/test_golden.py --update-golden`"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def cells_equal(expected, actual) -> bool:
    """Compare one table/summary cell: numerically when both parse as floats.

    The absolute tolerance absorbs near-zero diagnostics (asymmetries and
    gaps of order 1e-9 whose exact value is BLAS noise); the relative one
    covers objectives and ratios of order one and up.
    """
    if isinstance(expected, bool) or isinstance(actual, bool):
        return bool(expected) == bool(actual)
    try:
        e, a = float(expected), float(actual)
    except (TypeError, ValueError):
        return str(expected) == str(actual)
    if math.isnan(e) or math.isnan(a):
        return math.isnan(e) and math.isnan(a)
    return math.isclose(e, a, rel_tol=1e-5, abs_tol=1e-6)


def assert_matches(result, golden: dict, experiment_id: str) -> None:
    fresh = to_payload(result)
    assert fresh["headers"] == golden["headers"], f"{experiment_id}: headers drifted"
    assert len(fresh["rows"]) == len(golden["rows"]), (
        f"{experiment_id}: expected {len(golden['rows'])} rows, got {len(fresh['rows'])}"
    )
    assert sorted(fresh["summary"]) == sorted(golden["summary"]), (
        f"{experiment_id}: summary keys drifted"
    )
    if experiment_id in VOLATILE:
        return  # timings: structure only
    for i, (expected_row, actual_row) in enumerate(zip(golden["rows"], fresh["rows"])):
        assert len(expected_row) == len(actual_row), f"{experiment_id} row {i}: shape drifted"
        for j, (expected, actual) in enumerate(zip(expected_row, actual_row)):
            assert cells_equal(expected, actual), (
                f"{experiment_id} row {i} col {j}: golden {expected!r} != fresh {actual!r}"
            )
    for key in golden["summary"]:
        assert cells_equal(golden["summary"][key], fresh["summary"][key]), (
            f"{experiment_id} summary[{key!r}]: golden {golden['summary'][key]!r} "
            f"!= fresh {fresh['summary'][key]!r}"
        )


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_serial_matches_golden(experiment_id, update_golden):
    result = run_golden(experiment_id, "serial")
    if update_golden:
        write_golden(result)
        return
    assert_matches(result, load_golden(experiment_id), experiment_id)


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_vectorized_matches_golden(experiment_id, update_golden):
    if update_golden:
        pytest.skip("golden files are regenerated from the serial runs")
    result = run_golden(experiment_id, "vectorized")
    assert_matches(result, load_golden(experiment_id), experiment_id)


def test_process_pool_matches_golden(update_golden):
    # One representative experiment on the worker-pool backend keeps the
    # pickling + sharding path under the same golden pin without paying the
    # pool start-up cost nine times.
    if update_golden:
        pytest.skip("golden files are regenerated from the serial runs")
    result = run_golden("E3", "process-pool", workers=2)
    assert_matches(result, load_golden("E3"), "E3")
