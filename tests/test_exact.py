"""Differential suite for the exact-OPT engine and the shared-memory backend.

The two tentpoles of this layer are pinned here:

* ``repro.lp.exact`` — the subset-memoized branch-and-bound must produce
  *exactly* the optimum of the full ``n!`` ordering enumeration on every
  ragged batch Hypothesis can build, on every backend, and its internal
  bounds must genuinely bracket the ordered-LP values (floors below, greedy
  fill above);
* ``repro.exec.shm`` — sweeps dispatched through the zero-copy
  shared-memory pool must return *bit-for-bit* the results of the pickling
  pool and of the serial path, and large maps must issue O(workers)
  submissions.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy_homogeneous import (
    homogeneous_greedy_value,
    homogeneous_greedy_values_batch,
)
from repro.algorithms.optimal import optimal_value
from repro.batch.kernels import combined_lower_bound_batch, lower_bound_batch
from repro.batch.runner import CHUNKS_PER_WORKER, BatchRunner
from repro.core.batch import InstanceBatch
from repro.core.bounds import times_close
from repro.core.exceptions import InvalidInstanceError, SolverError
from repro.core.instance import Instance, Task
from repro.exec import ExecutionContext
from repro.exec.shm import attach_batch, publish_batch
from repro.lp.batch import OPTIMAL_METHODS, optimal, optimal_values_batch, solve_ordered_relaxation_batch
from repro.lp.exact import (
    MAX_BRANCH_AND_BOUND_TASKS,
    _floors_achievable,
    _greedy_fill_values,
    _tail_completion_floors,
    branch_and_bound_optimal_batch,
    permutation_table,
)
from repro.lp.interface import solve_ordered_relaxation
from repro.workloads.generators import uniform_instances

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def instances(draw, min_tasks: int = 1, max_tasks: int = 5):
    """One random instance with well-conditioned parameters."""
    n = draw(st.integers(min_tasks, max_tasks))
    P = draw(st.floats(0.5, 4.0, **finite))
    tasks = []
    for _ in range(n):
        volume = draw(st.floats(0.05, 10.0, **finite))
        weight = draw(st.floats(0.05, 10.0, **finite))
        delta = draw(st.floats(0.05, 1.5, **finite)) * P
        tasks.append(Task(volume=volume, weight=weight, delta=delta))
    return Instance(P=P, tasks=tasks)


@st.composite
def instance_batches(draw, max_batch: int = 4, max_tasks: int = 5):
    """A ragged batch of random instances (padding is exercised)."""
    return draw(st.lists(instances(max_tasks=max_tasks), min_size=1, max_size=max_batch))


# --------------------------------------------------------------------- #
# Branch-and-bound vs exhaustive enumeration
# --------------------------------------------------------------------- #


class TestBranchAndBoundMatchesEnumeration:
    @settings(max_examples=12, deadline=None)
    @given(instance_batches())
    def test_hypothesis_ragged_batches(self, insts):
        batch = InstanceBatch.from_instances(insts)
        engine = optimal(batch, method="branch-and-bound")
        reference = optimal(batch, method="enumerate")
        assert np.all(
            times_close(engine.objectives, reference.objectives, rtol=1e-6, atol=1e-8)
        )
        # The engine's winning orders must achieve its values.
        for b, inst in enumerate(insts):
            order = [int(t) for t in engine.orders[b, : inst.n]]
            achieved = solve_ordered_relaxation(inst, order, build_schedule=False).objective
            assert achieved == pytest.approx(engine.objectives[b], rel=1e-6, abs=1e-8)

    @settings(max_examples=6, deadline=None)
    @given(instances(min_tasks=2, max_tasks=5))
    def test_matches_scalar_bruteforce(self, inst):
        batch = InstanceBatch.from_instances([inst])
        engine = branch_and_bound_optimal_batch(batch)
        assert engine.objectives[0] == pytest.approx(optimal_value(inst), rel=1e-6, abs=1e-8)

    @pytest.mark.parametrize("n", [6, 7])
    def test_up_to_seven_tasks(self, n):
        insts = list(uniform_instances(n, 2, rng=np.random.default_rng(100 + n)))
        batch = InstanceBatch.from_instances(insts)
        engine = optimal(batch, method="branch-and-bound")
        reference = optimal(batch, method="enumerate")
        np.testing.assert_allclose(engine.objectives, reference.objectives, rtol=1e-6, atol=1e-8)
        assert engine.orderings_evaluated < reference.orderings_evaluated

    @pytest.mark.parametrize("backend", ["batch", "scipy", "simplex"])
    def test_all_backends_agree(self, backend):
        insts = list(uniform_instances(4, 3, rng=np.random.default_rng(7)))
        insts.append(next(uniform_instances(2, 1, rng=np.random.default_rng(8))))
        batch = InstanceBatch.from_instances(insts)
        engine = branch_and_bound_optimal_batch(batch, backend=backend)
        reference = optimal(batch, method="enumerate")
        np.testing.assert_allclose(engine.objectives, reference.objectives, rtol=1e-6, atol=1e-8)

    def test_process_pool_dispatch(self):
        insts = list(uniform_instances(3, 4, rng=np.random.default_rng(11)))
        batch = InstanceBatch.from_instances(insts)
        with ExecutionContext(backend="process-pool", workers=2) as ctx:
            pooled = branch_and_bound_optimal_batch(batch, backend="scipy", ctx=ctx)
        serial = branch_and_bound_optimal_batch(batch, backend="scipy")
        np.testing.assert_allclose(pooled.objectives, serial.objectives, rtol=1e-9)

    def test_chunk_size_is_forwarded_and_lossless(self):
        insts = list(uniform_instances(4, 5, rng=np.random.default_rng(19)))
        batch = InstanceBatch.from_instances(insts)
        whole = optimal(batch, method="branch-and-bound")
        chunked = optimal(batch, method="branch-and-bound", chunk_size=2)
        np.testing.assert_allclose(whole.objectives, chunked.objectives, rtol=1e-9)

    def test_empty_and_single_task_rows(self):
        batch = InstanceBatch.from_arrays(
            P=[1.0, 2.0],
            volumes=[[1.0, 0.0], [2.0, 3.0]],
            weights=[[1.0, 0.0], [1.0, 2.0]],
            deltas=[[0.5, 1.0], [1.0, 2.0]],
            mask=[[True, False], [True, True]],
        )
        engine = branch_and_bound_optimal_batch(batch)
        reference = optimal(batch, method="enumerate")
        np.testing.assert_allclose(engine.objectives, reference.objectives, rtol=1e-6)

    def test_stats_account_for_the_search(self):
        insts = list(uniform_instances(5, 2, rng=np.random.default_rng(3)))
        batch = InstanceBatch.from_instances(insts)
        engine = branch_and_bound_optimal_batch(batch)
        stats = engine.stats
        assert stats.lps_solved == engine.orderings_evaluated > 0
        assert stats.nodes_expanded > 0 and stats.frontier_peak > 0
        assert stats.pruned_dominated == 0  # exact mode never uses dominance


class TestEngineGuardsAndModes:
    def test_task_guard(self):
        batch = InstanceBatch.from_instances(
            [Instance.from_arrays(P=1.0, volumes=[1.0] * (MAX_BRANCH_AND_BOUND_TASKS + 1))]
        )
        with pytest.raises(InvalidInstanceError):
            branch_and_bound_optimal_batch(batch)

    def test_unknown_backend_and_method(self):
        batch = InstanceBatch.from_instances([Instance.from_arrays(P=1.0, volumes=[1.0])])
        with pytest.raises(SolverError):
            branch_and_bound_optimal_batch(batch, backend="bogus")
        with pytest.raises(SolverError):
            optimal(batch, method="bogus")

    def test_permutation_table_guard_and_cache(self):
        table = permutation_table(4)
        assert table.shape == (24, 4)
        assert permutation_table(4) is table  # small tables are cached
        with pytest.raises(InvalidInstanceError):
            permutation_table(-1)
        with pytest.raises(ValueError):
            table[0, 0] = 1  # read-only
        big = permutation_table(9)
        assert big.shape[0] == 362_880
        assert permutation_table(9) is not big  # large tables are not retained

    def test_dominance_mode_upper_bounds_the_optimum(self):
        insts = list(uniform_instances(5, 4, rng=np.random.default_rng(17)))
        batch = InstanceBatch.from_instances(insts)
        exact = branch_and_bound_optimal_batch(batch)
        heuristic = branch_and_bound_optimal_batch(batch, dominance=True)
        # Dominance pruning can only lose optima, never invent better ones.
        assert np.all(
            heuristic.objectives >= exact.objectives - 1e-8 * np.maximum(1.0, exact.objectives)
        )
        for b, inst in enumerate(insts):
            order = [int(t) for t in heuristic.orders[b, : inst.n]]
            achieved = solve_ordered_relaxation(inst, order, build_schedule=False).objective
            assert achieved == pytest.approx(heuristic.objectives[b], rel=1e-6, abs=1e-8)

    def test_optimal_methods_vocabulary(self):
        assert set(OPTIMAL_METHODS) == {"branch-and-bound", "enumerate"}

    def test_lower_bound_batch_exact_is_deprecated_but_routes_to_engine(self):
        insts = list(uniform_instances(4, 3, rng=np.random.default_rng(23)))
        batch = InstanceBatch.from_instances(insts)
        with pytest.deprecated_call(match=r"repro\.lp\.optimal"):
            exact = lower_bound_batch(batch, method="exact")
        reference = optimal(batch, method="enumerate").objectives
        np.testing.assert_allclose(exact, reference, rtol=1e-6, atol=1e-8)
        combined = combined_lower_bound_batch(batch)
        assert np.all(combined <= exact + 1e-6 * np.maximum(1.0, exact))

    def test_optimal_values_batch_alias_is_deprecated_but_agrees(self):
        insts = list(uniform_instances(4, 3, rng=np.random.default_rng(29)))
        batch = InstanceBatch.from_instances(insts)
        with pytest.deprecated_call(match=r"repro\.lp\.optimal"):
            alias = optimal_values_batch(batch, method="enumerate")
        reference = optimal(batch, method="enumerate")
        np.testing.assert_allclose(alias.objectives, reference.objectives, rtol=1e-12)
        assert alias.orderings_evaluated == reference.orderings_evaluated


# --------------------------------------------------------------------- #
# The engine's internal bounds really bracket the LP
# --------------------------------------------------------------------- #


class TestBoundsBracketTheLP:
    @settings(max_examples=10, deadline=None)
    @given(instances(min_tasks=2, max_tasks=5), st.integers(0, 2**16))
    def test_floors_below_and_greedy_above(self, inst, seed):
        n = inst.n
        order = np.random.default_rng(seed).permutation(n)
        solution = solve_ordered_relaxation(inst, order, build_schedule=False)
        batch = InstanceBatch.from_instances([inst])
        P = np.asarray(batch.P, dtype=float)
        volumes = batch.volumes[:, :n]
        weights = batch.weights[:, :n]
        deltas = batch.deltas[:, :n]
        heights = volumes / deltas
        floors = _tail_completion_floors(
            P, volumes, heights, deltas,
            np.zeros((1, n), dtype=bool), order[None, :], np.zeros(1), np.zeros(1),
        )
        slack = 1e-7 * np.maximum(1.0, np.abs(solution.completion_times))
        assert np.all(floors[0] <= solution.completion_times + slack)
        upper = _greedy_fill_values(P, volumes, weights, deltas, order[None, :])
        assert upper[0] >= solution.objective - 1e-7 * max(1.0, solution.objective)

    def test_certified_floors_are_the_lp_optimum(self):
        rng = np.random.default_rng(29)
        certified_seen = 0
        for _ in range(20):
            inst = next(uniform_instances(4, 1, rng=rng))
            order = rng.permutation(4)
            batch = InstanceBatch.from_instances([inst])
            P = np.asarray(batch.P, dtype=float)
            volumes, weights, deltas = batch.volumes, batch.weights, batch.deltas
            floors = _tail_completion_floors(
                P, volumes, volumes / deltas, deltas,
                np.zeros((1, 4), dtype=bool), order[None, :], np.zeros(1), np.zeros(1),
            )
            if not _floors_achievable(P, volumes, deltas, order[None, :], floors)[0]:
                continue
            certified_seen += 1
            value = float((np.take_along_axis(weights, order[None, :], axis=1) * floors).sum())
            reference = solve_ordered_relaxation(inst, order, build_schedule=False).objective
            assert value == pytest.approx(reference, rel=1e-7, abs=1e-9)
        assert certified_seen > 0  # the certificate must fire on easy instances


# --------------------------------------------------------------------- #
# Vectorized ordering analysis (E3's port off itertools.permutations)
# --------------------------------------------------------------------- #


class TestHomogeneousBatchEvaluator:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 2**16))
    def test_bitwise_equal_to_scalar_recurrence(self, n, seed):
        rng = np.random.default_rng(seed)
        deltas = rng.uniform(0.5, 1.0, size=n)
        perms = permutation_table(n)
        batch_values = homogeneous_greedy_values_batch(deltas, perms)
        for row, order in enumerate(itertools.permutations(range(n))):
            assert batch_values[row] == homogeneous_greedy_value(deltas, order)

    def test_rejects_non_permutations(self):
        from repro.core.exceptions import InvalidScheduleError

        with pytest.raises(InvalidScheduleError):
            homogeneous_greedy_values_batch([0.6, 0.8], np.array([[0, 0]]))


# --------------------------------------------------------------------- #
# Shared-memory backend: identical results, O(workers) submissions
# --------------------------------------------------------------------- #


def _per_row_bounds(sub_batch):
    return combined_lower_bound_batch(sub_batch)


def _per_row_weighted_volume(sub_batch, extra):
    scale = extra["scale"]
    return np.where(sub_batch.mask, sub_batch.weights * sub_batch.volumes, 0.0).sum(axis=1) * scale


class TestSharedMemoryBackend:
    def _batch(self, B=64, n=6, seed=31):
        rng = np.random.default_rng(seed)
        return InstanceBatch.from_arrays(
            P=rng.uniform(1.0, 4.0, B),
            volumes=rng.uniform(0.1, 1.0, (B, n)),
            weights=rng.uniform(0.1, 1.0, (B, n)),
            deltas=rng.uniform(0.05, 1.0, (B, n)),
        )

    def test_publish_attach_roundtrip(self):
        batch = self._batch(B=5)
        with publish_batch(batch, marker=np.arange(5.0)) as shared:
            attached, extra, segment = attach_batch(shared.handle)
            try:
                np.testing.assert_array_equal(attached.volumes, batch.volumes)
                np.testing.assert_array_equal(attached.P, batch.P)
                np.testing.assert_array_equal(attached.mask, batch.mask)
                np.testing.assert_array_equal(extra["marker"], np.arange(5.0))
                assert shared.handle.batch_size == 5
                with pytest.raises(ValueError):
                    attached.volumes[0, 0] = 1.0  # read-only views
            finally:
                segment.close()
        shared.close()  # idempotent

    def test_extra_name_collision_rejected(self):
        batch = self._batch(B=2)
        with pytest.raises(ValueError):
            publish_batch(batch, volumes=np.zeros(2))

    def test_map_batch_identical_across_backends(self):
        batch = self._batch()
        with ExecutionContext() as serial_ctx:
            serial = serial_ctx.map_batch(_per_row_bounds, batch)
        with ExecutionContext(backend="process-pool", workers=2) as pick_ctx:
            pickled = pick_ctx.map_batch(_per_row_bounds, batch)
            assert 0 < pick_ctx.runner.last_submission_count <= 2 * CHUNKS_PER_WORKER
        with ExecutionContext(backend="process-pool", workers=2, shm=True) as shm_ctx:
            shm = shm_ctx.map_batch(_per_row_bounds, batch)
            assert 0 < shm_ctx.runner.last_submission_count <= 2 * CHUNKS_PER_WORKER
        assert np.array_equal(np.asarray(serial), np.asarray(pickled))
        assert np.array_equal(np.asarray(serial), np.asarray(shm))

    def test_map_batch_extra_arrays_and_published_reuse(self):
        batch = self._batch(B=16)
        scale = np.full(16, 2.0)
        with ExecutionContext() as serial_ctx:
            reference = serial_ctx.map_batch(_per_row_weighted_volume, batch, extra={"scale": scale})
        with ExecutionContext(backend="process-pool", workers=2, shm=True) as ctx:
            direct = ctx.map_batch(_per_row_weighted_volume, batch, extra={"scale": scale})
            with ctx.publish(batch, scale=scale) as shared:
                reused_a = ctx.map_batch(_per_row_weighted_volume, shared)
                reused_b = ctx.map_batch(_per_row_weighted_volume, shared)
        assert np.array_equal(np.asarray(reference), np.asarray(direct))
        assert np.array_equal(np.asarray(reference), np.asarray(reused_a))
        assert np.array_equal(np.asarray(reference), np.asarray(reused_b))

    def test_map_batch_validates_inputs(self):
        batch = self._batch(B=4)
        with ExecutionContext() as ctx:
            with pytest.raises(TypeError):
                ctx.map_batch(_per_row_bounds, [1, 2, 3])
            with pytest.raises(ValueError):
                ctx.map_batch(_per_row_weighted_volume, batch, extra={"scale": np.zeros(3)})

    def test_lp_scalar_dispatch_shm_equals_serial(self):
        insts = list(uniform_instances(4, 12, rng=np.random.default_rng(2)))
        batch = InstanceBatch.from_instances(insts)
        serial = solve_ordered_relaxation_batch(batch, backend="scipy")
        with ExecutionContext(backend="process-pool", workers=2, shm=True) as ctx:
            shm = solve_ordered_relaxation_batch(batch, backend="scipy", ctx=ctx)
        assert np.array_equal(serial.objectives, shm.objectives)
        assert np.array_equal(serial.completion_times, shm.completion_times)

    def test_sweep_summaries_identical_shm_vs_pickling(self):
        from repro.scenarios import ScenarioSpec, SweepRunner

        spec = ScenarioSpec(
            name="shm-equality",
            generator="uniform_instances",
            grid={"n": [3, 4]},
            count=3,
            policies=("WDEQ",),
        )
        with ExecutionContext(seed=5, backend="process-pool", workers=2) as pick_ctx:
            pickled = SweepRunner(spec, pick_ctx).run()
        with ExecutionContext(seed=5, backend="process-pool", workers=2, shm=True) as shm_ctx:
            shm = SweepRunner(spec, shm_ctx).run()
        assert pickled.records == shm.records
        assert pickled.rows == shm.rows


class TestAdaptiveChunking:
    def test_large_maps_issue_o_workers_submissions(self):
        runner = BatchRunner(workers=4, executor="thread")
        try:
            items = list(range(10_000))
            result = runner.map(lambda x: x * 3, items)
            assert result == [x * 3 for x in items]
            assert 0 < runner.last_submission_count <= 4 * CHUNKS_PER_WORKER
        finally:
            runner.close()

    def test_small_maps_stay_inline(self):
        runner = BatchRunner(workers=4, executor="thread")
        try:
            assert runner.map(lambda x: x + 1, [41]) == [42]
            assert runner.last_submission_count == 0
        finally:
            runner.close()

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        runner = BatchRunner(workers=2, executor="thread")
        try:
            with pytest.raises(RuntimeError, match="boom"):
                runner.map(boom, list(range(100)))
        finally:
            runner.close()
