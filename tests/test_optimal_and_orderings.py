"""Tests for the brute-force optimal solver and the ordering heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.bounds import combined_lower_bound, height_bound, squashed_area_bound
from repro.core.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.core.validation import validate_column_schedule
from repro.algorithms.optimal import optimal_over_orders, optimal_schedule, optimal_value
from repro.algorithms.ordering import ORDERING_HEURISTICS, order_by
from tests.conftest import random_instance


class TestOptimal:
    def test_single_task(self):
        inst = Instance(P=4, tasks=[Task(volume=6, weight=2, delta=3)])
        result = optimal_schedule(inst)
        assert result.objective == pytest.approx(4.0)
        assert result.order == (0,)

    def test_schedule_is_valid(self, small_instance):
        result = optimal_schedule(small_instance)
        validate_column_schedule(result.schedule)

    def test_optimal_at_least_lower_bounds(self, rng):
        for _ in range(8):
            inst = random_instance(rng, n=4, P=2.0)
            opt = optimal_value(inst)
            assert opt >= squashed_area_bound(inst) - 1e-7
            assert opt >= height_bound(inst) - 1e-7
            assert opt >= combined_lower_bound(inst) - 1e-7

    def test_orderings_evaluated(self, small_instance):
        result = optimal_schedule(small_instance, build_schedule=False)
        assert result.orderings_evaluated == 24

    def test_too_many_tasks_guarded(self, rng):
        inst = random_instance(rng, n=10, P=4.0)
        with pytest.raises(InvalidInstanceError):
            optimal_schedule(inst)

    def test_empty_instance(self):
        result = optimal_schedule(Instance(P=1, tasks=[]))
        assert result.objective == 0.0

    def test_backends_agree_on_optimum(self, rng):
        inst = random_instance(rng, n=3, P=1.0)
        assert optimal_value(inst, backend="scipy") == pytest.approx(
            optimal_value(inst, backend="simplex"), rel=1e-6
        )

    def test_restricted_order_search(self, small_instance):
        smith = small_instance.smith_order()
        restricted = optimal_over_orders(small_instance, [smith])
        full = optimal_schedule(small_instance)
        assert restricted.objective >= full.objective - 1e-9
        assert restricted.orderings_evaluated == 1

    def test_restricted_search_requires_orders(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            optimal_over_orders(small_instance, [])

    def test_uncapped_optimum_is_smith(self, uncapped_instance):
        assert optimal_value(uncapped_instance) == pytest.approx(
            squashed_area_bound(uncapped_instance), rel=1e-6
        )


class TestOrderingHeuristics:
    def test_all_heuristics_produce_permutations(self, small_instance):
        for name in ORDERING_HEURISTICS:
            order = order_by(small_instance, name)
            assert sorted(order) == list(range(small_instance.n))

    def test_smith_order(self, small_instance):
        assert order_by(small_instance, "smith") == [3, 0, 2, 1]

    def test_identity(self, small_instance):
        assert order_by(small_instance, "identity") == [0, 1, 2, 3]

    def test_volume_order(self, small_instance):
        assert order_by(small_instance, "volume") == [2, 0, 3, 1]

    def test_weight_order(self, small_instance):
        assert order_by(small_instance, "weight") == [3, 0, 1, 2]

    def test_delta_order(self, small_instance):
        assert order_by(small_instance, "delta") == [3, 1, 0, 2]

    def test_weighted_height_order_handles_zero_weight(self):
        inst = Instance(P=2, tasks=[Task(1, 0.0, 1), Task(1, 1, 1)])
        assert order_by(inst, "weighted_height") == [1, 0]

    def test_unknown_heuristic(self, small_instance):
        with pytest.raises(InvalidScheduleError):
            order_by(small_instance, "nope")
