"""The compiled kernel tier: selection, fallback, and differential conformance.

The compiled event loop (:mod:`repro.batch.compiled.sim_loop`) and pivot
driver (:mod:`repro.batch.compiled.lp_pivot`) are written as plain scalar
Python that numba jits when installed; without numba the *same function
objects* run under the interpreter.  These tests therefore pin the compiled
tier's logic against the NumPy kernels on every machine — the numba-present
CI leg additionally runs the whole differential suites with real JIT code
(``tests/test_sim_batch.py`` / ``tests/test_lp_batch.py`` parametrize over
the available kernels).

Forcing dispatch without numba: monkeypatching ``compiled.NUMBA_AVAILABLE``
to True makes ``resolve_kernel('compiled')`` keep the compiled selection,
and the lazy jit getters catch the failing ``import numba`` and fall back
to the un-jitted loop bodies — the exact code numba would compile.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.batch.compiled as compiled
from repro.batch.compiled import (
    DEFAULT_ATOLS,
    KERNELS,
    PRECISIONS,
    numba_available,
    reset_fallback_warning,
    resolve_kernel,
)
from repro.batch.cache import ResultCache
from repro.batch.sim_kernels import (
    DeqBatchPolicy,
    FairShareNoCapBatchPolicy,
    PriorityBatchPolicy,
    WdeqBatchPolicy,
    default_batch_policies,
    simulate_batch,
)
from repro.core.batch import InstanceBatch
from repro.core.exceptions import InvalidInstanceError, SimulationError, SolverError
from repro.core.instance import Instance, Task
from repro.exec import ExecutionContext
from repro.lp.simplex import solve_linear_program_batch
from repro.workloads.generators import cluster_instances, uniform_instances


@pytest.fixture
def force_compiled(monkeypatch):
    """Make 'compiled' resolve as available (fallback-free dispatch)."""
    monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", True)
    yield
    reset_fallback_warning()


def _sim_batch(B: int = 12, n: int = 6, seed: int = 3) -> InstanceBatch:
    insts = list(cluster_instances(n, B, rng=np.random.default_rng(seed)))
    return InstanceBatch.from_instances(insts)


# --------------------------------------------------------------------- #
# Kernel selection and fallback
# --------------------------------------------------------------------- #


class TestKernelResolution:
    def test_constants(self):
        assert KERNELS == ("auto", "numpy", "compiled")
        assert PRECISIONS == ("float64", "float32")
        assert set(DEFAULT_ATOLS) == set(PRECISIONS)

    def test_numpy_is_always_numpy(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")

    def test_auto_resolves_per_availability(self, monkeypatch):
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        assert resolve_kernel("auto") == "numpy"
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", True)
        assert resolve_kernel("auto") == "compiled"

    def test_compiled_without_numba_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert resolve_kernel("compiled") == "numpy"
        # Warn-once: the second resolution is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("compiled") == "numpy"
        # ...until the one-shot latch is reset (test hook).
        reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="malleable-repro\\[compiled\\]"):
            resolve_kernel("compiled")

    def test_auto_never_warns(self, monkeypatch):
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        reset_fallback_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("auto") == "numpy"


class TestExecutionContextKernel:
    def test_defaults(self):
        ctx = ExecutionContext()
        assert ctx.kernel == "auto"
        assert ctx.precision == "float64"
        assert ctx.resolved_kernel() in ("numpy", "compiled")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            ExecutionContext(kernel="cuda")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown precision"):
            ExecutionContext(precision="float16")

    def test_from_options_passes_through(self):
        ctx = ExecutionContext.from_options(kernel="numpy", precision="float32")
        assert ctx.kernel == "numpy"
        assert ctx.precision == "float32"

    def test_resolved_kernel_tracks_availability(self, monkeypatch):
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", True)
        assert ExecutionContext(kernel="auto").resolved_kernel() == "compiled"
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        assert ExecutionContext(kernel="auto").resolved_kernel() == "numpy"

    def test_cached_keys_include_kernel_and_precision(self, monkeypatch):
        # Regression test mirroring the PR-4 lp_backend cache fix: results
        # computed by one numeric tier must never be served to another from
        # a shared cache.
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", True)
        cache = ResultCache()
        values = iter(["numpy-f64", "compiled-f64", "numpy-f32", "unused"])

        def compute():
            return next(values)

        numpy_ctx = ExecutionContext(cache=cache, kernel="numpy")
        compiled_ctx = ExecutionContext(cache=cache, kernel="compiled")
        f32_ctx = ExecutionContext(cache=cache, kernel="numpy", precision="float32")
        assert numpy_ctx.cached("sweep", {"n": 1}, compute) == "numpy-f64"
        assert compiled_ctx.cached("sweep", {"n": 1}, compute) == "compiled-f64"
        assert f32_ctx.cached("sweep", {"n": 1}, compute) == "numpy-f32"
        # Each tier keeps hitting its own entry.
        assert numpy_ctx.cached("sweep", {"n": 1}, compute) == "numpy-f64"
        assert compiled_ctx.cached("sweep", {"n": 1}, compute) == "compiled-f64"
        assert f32_ctx.cached("sweep", {"n": 1}, compute) == "numpy-f32"
        # 'auto' keys on the *resolved* tier: with numba "available" it
        # shares the compiled entry, without it the numpy one.
        assert ExecutionContext(cache=cache).cached("sweep", {"n": 1}, compute) == "compiled-f64"
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        assert ExecutionContext(cache=cache).cached("sweep", {"n": 1}, compute) == "numpy-f64"
        # Caller-supplied params cannot shadow the context's tier.
        assert (
            numpy_ctx.cached("sweep", {"n": 1, "kernel": "compiled"}, compute) == "numpy-f64"
        )


# --------------------------------------------------------------------- #
# Compiled event loop vs the NumPy engine
# --------------------------------------------------------------------- #


class TestCompiledSimulation:
    def test_all_policies_match_numpy_exactly(self, force_compiled):
        batch = _sim_batch()
        for policy in default_batch_policies(batch):
            ref = simulate_batch(batch, policy, kernel="numpy")
            got = simulate_batch(batch, policy, kernel="compiled")
            np.testing.assert_allclose(
                got.completion_times, ref.completion_times, rtol=1e-12, atol=0
            )
            np.testing.assert_array_equal(got.num_events, ref.num_events)

    def test_release_times_match_numpy(self, force_compiled):
        batch = _sim_batch(B=8, n=4, seed=7)
        rng = np.random.default_rng(1)
        releases = rng.choice([0.0, 0.5, 2.0], size=(batch.batch_size, batch.n_max))
        ref = simulate_batch(batch, DeqBatchPolicy(), release_times=releases, kernel="numpy")
        got = simulate_batch(batch, DeqBatchPolicy(), release_times=releases, kernel="compiled")
        np.testing.assert_allclose(got.completion_times, ref.completion_times, rtol=1e-12)
        np.testing.assert_array_equal(got.num_events, ref.num_events)

    def test_pause_resume_matches_one_shot(self, force_compiled):
        from repro.batch.sim_kernels import advance_simulation_state, init_simulation_state

        batch = _sim_batch(B=6, n=5, seed=9)
        one_shot = simulate_batch(batch, WdeqBatchPolicy(), kernel="compiled")
        state = init_simulation_state(batch)
        for until in (1.0, 2.5, None):
            advance_simulation_state(state, WdeqBatchPolicy(), until=until, kernel="compiled")
        np.testing.assert_allclose(
            state.completion_times, one_shot.completion_times, rtol=1e-12
        )

    def test_traces_fall_back_to_numpy_and_match(self, force_compiled):
        # Trace recording stays on the NumPy path; results must not change.
        batch = _sim_batch(B=4, n=3, seed=5)
        ref = simulate_batch(batch, WdeqBatchPolicy(), record_trace=True, kernel="numpy")
        got = simulate_batch(batch, WdeqBatchPolicy(), record_trace=True, kernel="compiled")
        np.testing.assert_allclose(got.completion_times, ref.completion_times, rtol=1e-12)
        for trace_ref, trace_got in zip(ref.traces, got.traces):
            assert trace_got.completion_order() == trace_ref.completion_order()
            assert trace_got.num_reshares == trace_ref.num_reshares

    def test_custom_policy_declines_dispatch(self, force_compiled):
        from repro.batch.compiled.sim_loop import policy_dispatch

        class MyWdeq(WdeqBatchPolicy):
            pass

        assert policy_dispatch(MyWdeq()) is None
        assert policy_dispatch(WdeqBatchPolicy()) is not None
        # The subclass still simulates correctly through the NumPy fallback.
        batch = _sim_batch(B=3, n=3)
        ref = simulate_batch(batch, WdeqBatchPolicy(), kernel="numpy")
        got = simulate_batch(batch, MyWdeq(), kernel="compiled")
        np.testing.assert_allclose(got.completion_times, ref.completion_times, rtol=1e-12)

    def test_priority_policy_matches_numpy(self, force_compiled):
        batch = _sim_batch(B=6, n=4, seed=13)
        rng = np.random.default_rng(2)
        priorities = rng.integers(0, 3, size=(batch.batch_size, batch.n_max)).astype(float)
        ref = simulate_batch(batch, PriorityBatchPolicy(priorities=priorities), kernel="numpy")
        got = simulate_batch(
            batch, PriorityBatchPolicy(priorities=priorities), kernel="compiled"
        )
        np.testing.assert_allclose(got.completion_times, ref.completion_times, rtol=1e-12)
        np.testing.assert_array_equal(got.num_events, ref.num_events)

    def test_error_messages_match_numpy_engine(self, force_compiled):
        zero_weight = InstanceBatch.from_instances(
            [Instance(P=1.0, tasks=[Task(volume=1.0, weight=0.0, delta=0.5)])]
        )
        with pytest.raises(InvalidInstanceError, match="strictly positive weights"):
            simulate_batch(zero_weight, WdeqBatchPolicy(), kernel="compiled")
        with pytest.raises(SimulationError, match="positive weights"):
            simulate_batch(zero_weight, FairShareNoCapBatchPolicy(), kernel="compiled")


# --------------------------------------------------------------------- #
# Compiled pivot driver vs the NumPy simplex
# --------------------------------------------------------------------- #


class TestCompiledSimplex:
    def _random_lps(self, B: int, seed: int):
        rng = np.random.default_rng(seed)
        nvar, m_ub, m_eq = 4, 3, 1
        return (
            rng.normal(size=(B, nvar)),
            rng.normal(size=(B, m_ub, nvar)),
            rng.uniform(-1.0, 2.0, size=(B, m_ub)),
            rng.normal(size=(B, m_eq, nvar)),
            rng.uniform(-1.0, 1.0, size=(B, m_eq)),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_numpy_kernel_on_random_lps(self, force_compiled, seed):
        c, A_ub, b_ub, A_eq, b_eq = self._random_lps(B=10, seed=seed)
        ref = solve_linear_program_batch(c, A_ub, b_ub, A_eq, b_eq, kernel="numpy")
        got = solve_linear_program_batch(c, A_ub, b_ub, A_eq, b_eq, kernel="compiled")
        assert list(got.statuses) == list(ref.statuses)
        optimal = ref.statuses == "optimal"
        np.testing.assert_allclose(
            got.objectives[optimal], ref.objectives[optimal], rtol=1e-8, atol=1e-9
        )
        np.testing.assert_allclose(got.x[optimal], ref.x[optimal], rtol=1e-8, atol=1e-9)

    def test_ordered_relaxation_matches_numpy(self, force_compiled):
        insts = list(uniform_instances(5, 16, rng=np.random.default_rng(21)))
        batch = InstanceBatch.from_instances(insts)
        from repro.lp.batch import solve_ordered_relaxation_batch

        ref = solve_ordered_relaxation_batch(batch, backend="batch", kernel="numpy")
        got = solve_ordered_relaxation_batch(batch, backend="batch", kernel="compiled")
        np.testing.assert_allclose(got.objectives, ref.objectives, rtol=1e-9)

    def test_pivot_limit_raises(self, force_compiled):
        rng = np.random.default_rng(0)
        c = rng.normal(size=(2, 4))
        A_ub = rng.normal(size=(2, 3, 4))
        b_ub = rng.uniform(0.5, 1.0, size=(2, 3))
        with pytest.raises(SolverError, match="pivots"):
            solve_linear_program_batch(c, A_ub, b_ub, max_iterations=1, kernel="compiled")


# --------------------------------------------------------------------- #
# float32 throughput mode
# --------------------------------------------------------------------- #


class TestFloat32Mode:
    def test_instance_batch_astype(self):
        batch = _sim_batch(B=3, n=3)
        cast = batch.astype(np.float32)
        assert cast.volumes.dtype == np.float32
        assert cast.weights.dtype == np.float32
        assert cast.deltas.dtype == np.float32
        assert cast.mask is batch.mask  # booleans are shared, not copied
        assert batch.astype(batch.volumes.dtype) is batch  # no-op short-circuits

    @pytest.mark.parametrize("kernel", ["numpy"] + (["compiled"] if numba_available() else []))
    def test_simulation_conforms_at_widened_tolerance(self, kernel):
        batch = _sim_batch(B=10, n=5, seed=17)
        ref = simulate_batch(batch, WdeqBatchPolicy(), kernel=kernel)
        got = simulate_batch(batch, WdeqBatchPolicy(), kernel=kernel, precision="float32")
        assert got.completion_times.dtype == np.float32
        np.testing.assert_allclose(
            got.completion_times, ref.completion_times, rtol=1e-4, atol=1e-4
        )

    def test_lp_conforms_at_widened_tolerance(self):
        insts = list(uniform_instances(5, 16, rng=np.random.default_rng(23)))
        batch = InstanceBatch.from_instances(insts)
        from repro.lp.batch import solve_ordered_relaxation_batch

        ref = solve_ordered_relaxation_batch(batch, backend="batch")
        got = solve_ordered_relaxation_batch(batch, backend="batch", precision="float32")
        np.testing.assert_allclose(got.objectives, ref.objectives, rtol=1e-3, atol=1e-3)

    def test_unknown_precision_rejected(self):
        batch = _sim_batch(B=2, n=2)
        with pytest.raises(ValueError, match="unknown precision"):
            simulate_batch(batch, WdeqBatchPolicy(), precision="float16")
        with pytest.raises(SolverError, match="precision"):
            solve_linear_program_batch(
                np.zeros((1, 2)), A_ub=np.ones((1, 1, 2)), b_ub=np.ones((1, 1)),
                precision="float16",
            )


# --------------------------------------------------------------------- #
# Service and JIT plumbing
# --------------------------------------------------------------------- #


class TestServiceKernel:
    def test_live_state_resolves_kernel_at_init(self, monkeypatch):
        from repro.service.state import LiveSystemState

        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        assert LiveSystemState(P=2.0).kernel == "numpy"
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", True)
        assert LiveSystemState(P=2.0, kernel="auto").kernel == "compiled"

    def test_live_state_advances_identically_on_both_tiers(self, force_compiled):
        from repro.service.state import LiveSystemState

        outcomes = {}
        for kernel in ("numpy", "compiled"):
            live = LiveSystemState(P=2.0, kernel=kernel)
            live.submit(volume=3.0, weight=1.0, delta=1.5, now=0.0, task_id="a")
            live.submit(volume=1.0, weight=2.0, delta=1.0, now=0.5, task_id="b")
            projected = live.project_completion("a")
            live.advance_to(10.0)
            outcomes[kernel] = (projected, live.records["a"].completion_time,
                                live.records["b"].completion_time)
        assert outcomes["numpy"] == pytest.approx(outcomes["compiled"], rel=1e-12)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestWithRealNumba:
    def test_loops_actually_jit(self):
        # With numba installed the lazy getters must hand back Dispatcher
        # objects wrapping the plain loop bodies, not the plain functions.
        # (The getters cache: this only holds when nothing resolved them
        # while availability was monkeypatched off, so reset first.)
        from repro.batch.compiled import lp_pivot, sim_loop

        sim_loop._jit_advance_rows = None
        lp_pivot._jit_pivot_all = None
        advance = sim_loop._get_advance_rows()
        pivot = lp_pivot._get_pivot_all()
        assert getattr(advance, "py_func", None) is sim_loop._advance_rows
        assert getattr(pivot, "py_func", None) is lp_pivot._pivot_all
