"""Test package for the malleable-task scheduling reproduction.

The package marker lets test modules import shared helpers from
``tests.conftest`` (e.g. :func:`tests.conftest.random_instance`) regardless
of how pytest is invoked (``pytest`` or ``python -m pytest``).
"""
