"""Unit tests for the instance model (repro.core.instance)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidInstanceError


class TestTask:
    def test_basic_construction(self):
        task = Task(volume=2.0, weight=3.0, delta=1.5, name="t")
        assert task.volume == 2.0
        assert task.weight == 3.0
        assert task.delta == 1.5
        assert task.name == "t"

    def test_defaults(self):
        task = Task(volume=1.0)
        assert task.weight == 1.0
        assert math.isinf(task.delta)
        assert task.name is None

    def test_height(self):
        assert Task(volume=6, delta=3).height == pytest.approx(2.0)

    def test_height_with_infinite_delta(self):
        assert Task(volume=6).height == 0.0

    def test_smith_ratio(self):
        assert Task(volume=6, weight=2).smith_ratio == pytest.approx(3.0)

    def test_smith_ratio_zero_weight(self):
        assert math.isinf(Task(volume=6, weight=0).smith_ratio)

    @pytest.mark.parametrize("volume", [0.0, -1.0, math.nan, math.inf])
    def test_invalid_volume(self, volume):
        with pytest.raises(InvalidInstanceError):
            Task(volume=volume)

    def test_invalid_weight(self):
        with pytest.raises(InvalidInstanceError):
            Task(volume=1, weight=-0.1)

    @pytest.mark.parametrize("delta", [0.0, -2.0])
    def test_invalid_delta(self, delta):
        with pytest.raises(InvalidInstanceError):
            Task(volume=1, delta=delta)

    def test_with_volume(self):
        task = Task(volume=2, weight=3, delta=1, name="x")
        shrunk = task.with_volume(0.5)
        assert shrunk.volume == 0.5
        assert shrunk.weight == 3
        assert shrunk.delta == 1
        assert shrunk.name == "x"

    def test_scaled(self):
        task = Task(volume=2, weight=3, delta=1)
        scaled = task.scaled(volume_factor=2, weight_factor=0.5)
        assert scaled.volume == 4
        assert scaled.weight == 1.5

    def test_frozen(self):
        task = Task(volume=1)
        with pytest.raises(AttributeError):
            task.volume = 2  # type: ignore[misc]


class TestInstance:
    def test_arrays(self, small_instance):
        assert small_instance.n == 4
        np.testing.assert_allclose(small_instance.volumes, [4, 6, 2, 5])
        np.testing.assert_allclose(small_instance.weights, [2, 1, 1, 3])
        np.testing.assert_allclose(small_instance.deltas, [2, 3, 1, 4])

    def test_arrays_read_only(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.volumes[0] = 99

    def test_len_iter_getitem(self, small_instance):
        assert len(small_instance) == 4
        assert [t.name for t in small_instance] == ["A", "B", "C", "D"]
        assert small_instance[1].name == "B"

    def test_totals(self, small_instance):
        assert small_instance.total_volume == pytest.approx(17)
        assert small_instance.total_weight == pytest.approx(7)

    def test_heights(self, small_instance):
        np.testing.assert_allclose(small_instance.heights, [2, 2, 2, 1.25])

    def test_invalid_platform(self):
        with pytest.raises(InvalidInstanceError):
            Instance(P=0, tasks=[Task(1)])
        with pytest.raises(InvalidInstanceError):
            Instance(P=-1, tasks=[Task(1)])

    def test_delta_clamped_to_platform(self):
        inst = Instance(P=2, tasks=[Task(volume=1, delta=10)])
        assert inst.deltas[0] == 2

    def test_delta_clamp_disabled(self):
        with pytest.raises(InvalidInstanceError):
            Instance(P=2, tasks=[Task(volume=1, delta=10)], clamp_delta=False)

    def test_non_task_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance(P=2, tasks=[{"volume": 1}])  # type: ignore[list-item]

    def test_from_arrays_defaults(self):
        inst = Instance.from_arrays(P=3, volumes=[1, 2, 3])
        assert inst.n == 3
        np.testing.assert_allclose(inst.weights, [1, 1, 1])
        np.testing.assert_allclose(inst.deltas, [3, 3, 3])
        assert inst[0].name == "T1"

    def test_from_arrays_mismatched_lengths(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_arrays(P=3, volumes=[1, 2], weights=[1])

    def test_empty_instance(self):
        inst = Instance(P=1, tasks=[])
        assert inst.n == 0
        assert inst.total_volume == 0.0

    def test_homogeneity_predicates(self, homogeneous_vb_instance, small_instance):
        assert homogeneous_vb_instance.has_homogeneous_weights()
        assert homogeneous_vb_instance.has_homogeneous_volumes()
        assert homogeneous_vb_instance.has_large_deltas()
        assert not small_instance.has_homogeneous_weights()
        assert not small_instance.has_homogeneous_volumes()
        assert not small_instance.has_large_deltas()

    def test_is_uniprocessor(self):
        inst = Instance(P=4, tasks=[Task(1, delta=1), Task(2, delta=1)])
        assert inst.is_uniprocessor()
        assert not Instance(P=4, tasks=[Task(1, delta=2)]).is_uniprocessor()

    def test_subinstance_keeps_weights_and_deltas(self, small_instance):
        sub = small_instance.subinstance([1, 3, 1, 2.5])
        assert sub.n == 4
        np.testing.assert_allclose(sub.volumes, [1, 3, 1, 2.5])
        np.testing.assert_allclose(sub.weights, small_instance.weights)

    def test_subinstance_drops_zero_volume_tasks(self, small_instance):
        sub = small_instance.subinstance([0, 3, 0, 2.5])
        assert sub.n == 2
        np.testing.assert_allclose(sub.volumes, [3, 2.5])

    def test_subinstance_rejects_larger_volumes(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            small_instance.subinstance([10, 1, 1, 1])

    def test_subinstance_rejects_negative(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            small_instance.subinstance([-1, 1, 1, 1])

    def test_subinstance_wrong_shape(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            small_instance.subinstance([1, 1])

    def test_reordered(self, small_instance):
        reordered = small_instance.reordered([3, 2, 1, 0])
        assert [t.name for t in reordered] == ["D", "C", "B", "A"]

    def test_reordered_invalid(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            small_instance.reordered([0, 0, 1, 2])

    def test_smith_order(self, small_instance):
        # Ratios V/w: A=2, B=6, C=2, D=5/3 -> D, A, C, B (ties by index).
        assert small_instance.smith_order() == [3, 0, 2, 1]

    def test_height_order(self, small_instance):
        # Heights: A=2, B=2, C=2, D=1.25 -> D first then by index.
        assert small_instance.height_order() == [3, 0, 1, 2]

    def test_without_task(self, small_instance):
        reduced = small_instance.without_task(1)
        assert reduced.n == 3
        assert [t.name for t in reduced] == ["A", "C", "D"]

    def test_without_task_out_of_range(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            small_instance.without_task(10)

    def test_equality_and_hash(self, small_instance):
        clone = Instance(P=small_instance.P, tasks=list(small_instance.tasks))
        assert clone == small_instance
        assert hash(clone) == hash(small_instance)
        assert clone != Instance(P=5, tasks=list(small_instance.tasks))

    def test_describe_and_repr(self, small_instance):
        text = small_instance.describe()
        assert "P = 4" in text
        assert "A" in text and "D" in text
        assert "n=4" in repr(small_instance)
