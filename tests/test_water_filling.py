"""Tests for the Water-Filling normal-form algorithm (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InfeasibleScheduleError, InvalidScheduleError
from repro.core.validation import validate_column_schedule
from repro.algorithms.water_filling import (
    water_fill_function,
    water_filling_levels,
    water_filling_schedule,
)
from repro.algorithms.wdeq import wdeq_schedule
from repro.algorithms.greedy import greedy_completion_times
from repro.algorithms.optimal import optimal_schedule
from tests.conftest import random_instance


class TestWaterFillFunction:
    def test_flat_profile(self):
        lengths = np.array([1.0, 1.0])
        heights = np.zeros(2)
        assert water_fill_function(lengths, heights, delta=2.0, level=1.5) == pytest.approx(3.0)

    def test_cap_applies(self):
        lengths = np.array([1.0])
        heights = np.zeros(1)
        assert water_fill_function(lengths, heights, delta=1.0, level=5.0) == pytest.approx(1.0)

    def test_below_heights_gives_zero(self):
        lengths = np.array([1.0, 2.0])
        heights = np.array([3.0, 2.0])
        assert water_fill_function(lengths, heights, delta=4.0, level=1.0) == 0.0


class TestWaterFillingBasics:
    def test_single_task(self):
        inst = Instance(P=2, tasks=[Task(volume=2, delta=2)])
        sched = water_filling_schedule(inst, [1.0])
        validate_column_schedule(sched)
        assert sched.rates[0, 0] == pytest.approx(2.0)

    def test_infeasible_raises(self):
        inst = Instance(P=2, tasks=[Task(volume=10, delta=2)])
        with pytest.raises(InfeasibleScheduleError):
            water_filling_schedule(inst, [1.0])

    def test_infeasible_due_to_cap(self):
        # Enough platform capacity but the per-task cap makes the deadline impossible.
        inst = Instance(P=4, tasks=[Task(volume=4, delta=1)])
        with pytest.raises(InfeasibleScheduleError):
            water_filling_schedule(inst, [2.0])

    def test_zero_completion_time_with_volume_is_infeasible(self):
        inst = Instance(P=2, tasks=[Task(volume=1, delta=2)])
        with pytest.raises(InfeasibleScheduleError):
            water_filling_schedule(inst, [0.0])

    def test_wrong_number_of_completion_times(self, small_instance):
        with pytest.raises(InvalidScheduleError):
            water_filling_schedule(small_instance, [1.0, 2.0])

    def test_negative_completion_time_rejected(self):
        inst = Instance(P=2, tasks=[Task(volume=1, delta=2)])
        with pytest.raises(InvalidScheduleError):
            water_filling_schedule(inst, [-1.0])

    def test_two_tasks_hand_computed(self):
        # P = 2, T0: V=1, delta=1 completing at 1; T1: V=3, delta=2 completing at 2.
        # Column 1 ([0,1]): T0 at 1.  T1 pours: column 2 first (height 0),
        # saturating at 2 gives area 2, remaining 1 goes to column 1 at rate 1.
        inst = Instance(P=2, tasks=[Task(1, 1, 1), Task(3, 1, 2)])
        sched = water_filling_schedule(inst, [1.0, 2.0])
        validate_column_schedule(sched)
        assert sched.rates[0, 0] == pytest.approx(1.0)
        assert sched.rates[1, 0] == pytest.approx(1.0)
        assert sched.rates[1, 1] == pytest.approx(2.0)

    def test_ties_in_completion_times(self):
        inst = Instance(P=2, tasks=[Task(1, 1, 1), Task(1, 1, 1)])
        sched = water_filling_schedule(inst, [1.0, 1.0])
        validate_column_schedule(sched)
        np.testing.assert_allclose(sched.completion_times_by_task(), [1.0, 1.0])


class TestWaterFillingStructure:
    def test_occupancy_non_increasing(self, rng):
        """Lemma 3: after each task the column occupancy is non-increasing in time."""
        for _ in range(10):
            inst = random_instance(rng, n=5, P=2.0)
            completions = wdeq_schedule(inst).completion_times_by_task()
            sched, _levels = water_filling_levels(inst, completions)
            lengths = sched.column_lengths
            active = lengths > 1e-9
            occupancy = np.zeros(inst.n)
            for pos, task in enumerate(sched.order):
                occupancy += sched.rates[task]
                values = occupancy[: pos + 1][active[: pos + 1]]
                assert np.all(np.diff(values) <= 1e-7)

    def test_per_task_allocation_non_decreasing_over_time(self, rng):
        """Lemma 6's premise: a task's allocation never decreases before completion."""
        for _ in range(10):
            inst = random_instance(rng, n=5, P=2.0)
            completions = wdeq_schedule(inst).completion_times_by_task()
            sched = water_filling_schedule(inst, completions)
            lengths = sched.column_lengths
            for i in range(inst.n):
                pos = sched.position_of(i)
                rates = [
                    sched.rates[i, j]
                    for j in range(pos + 1)
                    if lengths[j] > 1e-9 and sched.rates[i, j] > 1e-9
                ]
                assert all(b >= a - 1e-7 for a, b in zip(rates, rates[1:]))

    def test_levels_never_exceed_platform(self, rng):
        """The water level chosen for every task stays within the platform."""
        for _ in range(5):
            inst = random_instance(rng, n=5, P=2.0)
            completions = wdeq_schedule(inst).completion_times_by_task()
            _sched, levels = water_filling_levels(inst, completions)
            assert np.all(levels <= inst.P + 1e-9)

    def test_change_count_bound_theorem9(self, rng):
        """Theorem 9: at most n allocation changes (paper accounting)."""
        for _ in range(15):
            n = int(rng.integers(2, 9))
            inst = random_instance(rng, n=n, P=4.0)
            completions = wdeq_schedule(inst).completion_times_by_task()
            sched = water_filling_schedule(inst, completions)
            assert sched.allocation_change_count(convention="paper") <= n
            assert sched.allocation_change_count(convention="all") <= 2 * n


class TestWaterFillingCorrectness:
    """Theorem 8: WF succeeds on completion times coming from valid schedules."""

    @pytest.mark.parametrize("source", ["wdeq", "greedy", "optimal"])
    def test_reconstructs_valid_schedule(self, rng, source):
        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            if source == "wdeq":
                targets = wdeq_schedule(inst).completion_times_by_task()
            elif source == "greedy":
                targets = greedy_completion_times(inst, inst.smith_order())
            else:
                targets = optimal_schedule(inst).schedule.completion_times_by_task()
            sched = water_filling_schedule(inst, targets)
            validate_column_schedule(sched)
            np.testing.assert_allclose(
                sched.completion_times_by_task(), targets, rtol=1e-9, atol=1e-9
            )

    def test_objective_preserved(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=5, P=3.0)
            wdeq = wdeq_schedule(inst)
            normalised = water_filling_schedule(inst, wdeq.completion_times_by_task())
            assert normalised.weighted_completion_time() == pytest.approx(
                wdeq.weighted_completion_time()
            )
