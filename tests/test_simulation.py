"""Tests for the event-driven simulation engine and the online policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import SimulationError
from repro.core.validation import validate_continuous_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.simulation.engine import simulate
from repro.simulation.nonclairvoyant import compare_policies, default_policies, run_wdeq_online
from repro.simulation.policies import (
    DeqPolicy,
    FairShareNoCapPolicy,
    PriorityPolicy,
    TaskView,
    WdeqPolicy,
)
from tests.conftest import random_instance


class TestPolicies:
    def _views(self):
        return [
            TaskView(task_id=0, weight=1.0, delta=1.0, work_done=0.0, elapsed=0.0),
            TaskView(task_id=1, weight=3.0, delta=4.0, work_done=0.0, elapsed=0.0),
        ]

    def test_wdeq_policy_matches_allocation_rule(self):
        alloc = WdeqPolicy().allocate(4.0, self._views())
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(3.0)

    def test_deq_policy_ignores_weights(self):
        alloc = DeqPolicy().allocate(4.0, self._views())
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(3.0)  # cap absorbs the leftover

    def test_fair_share_no_cap(self):
        alloc = FairShareNoCapPolicy().allocate(4.0, self._views())
        assert alloc[0] == pytest.approx(1.0)  # min(delta, 4 * 1/4)
        assert alloc[1] == pytest.approx(3.0)

    def test_priority_policy(self):
        policy = PriorityPolicy(priorities=[0.0, 1.0])
        alloc = policy.allocate(4.0, self._views())
        assert alloc[1] == pytest.approx(4.0)
        assert alloc[0] == pytest.approx(0.0)

    def test_empty_task_list(self):
        assert WdeqPolicy().allocate(4.0, []) == {}
        assert DeqPolicy().allocate(4.0, []) == {}


class TestEngine:
    def test_online_wdeq_matches_analytic_schedule(self, rng):
        """The event-driven WDEQ must match the closed-form column simulation."""
        for _ in range(10):
            inst = random_instance(rng, n=5, P=2.0)
            online = run_wdeq_online(inst)
            analytic = wdeq_schedule(inst)
            np.testing.assert_allclose(
                online.completion_times,
                analytic.completion_times_by_task(),
                rtol=1e-7,
                atol=1e-9,
            )

    def test_schedule_output_is_valid(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=5, P=2.0)
            result = simulate(inst, DeqPolicy())
            validate_continuous_schedule(result.schedule)

    def test_release_times_respected(self):
        inst = Instance(P=1, tasks=[Task(1, 1, 1), Task(1, 1, 1)])
        result = simulate(inst, DeqPolicy(), release_times=[0.0, 5.0])
        assert result.completion_times[0] == pytest.approx(1.0)
        assert result.completion_times[1] == pytest.approx(6.0)
        assert any(e.task == 1 and e.time == 5.0 for e in result.trace.release_events)

    def test_idle_gap_recorded(self):
        inst = Instance(P=1, tasks=[Task(1, 1, 1)])
        result = simulate(inst, DeqPolicy(), release_times=[2.0])
        assert result.completion_times[0] == pytest.approx(3.0)

    def test_trace_completion_order(self):
        inst = Instance(P=2, tasks=[Task(1, 1, 1), Task(4, 1, 2)])
        result = simulate(inst, DeqPolicy())
        assert result.trace.completion_order() == [0, 1]
        assert result.trace.num_reshares >= 2

    def test_objective_helpers(self, small_instance):
        result = simulate(small_instance, WdeqPolicy())
        assert result.weighted_completion_time() == pytest.approx(
            wdeq_schedule(small_instance).weighted_completion_time()
        )
        assert result.makespan() > 0

    def test_empty_instance(self):
        result = simulate(Instance(P=1, tasks=[]), WdeqPolicy())
        assert result.completion_times.size == 0

    def test_oversubscribing_policy_rejected(self):
        class Greedy(FairShareNoCapPolicy):
            def allocate(self, P, tasks):
                return {t.task_id: P for t in tasks}

        inst = Instance(P=2, tasks=[Task(1, 1, 2), Task(1, 1, 2)])
        with pytest.raises(SimulationError):
            simulate(inst, Greedy())

    def test_stalling_policy_rejected(self):
        class Lazy(FairShareNoCapPolicy):
            def allocate(self, P, tasks):
                return {t.task_id: 0.0 for t in tasks}

        inst = Instance(P=2, tasks=[Task(1, 1, 2)])
        with pytest.raises(SimulationError):
            simulate(inst, Lazy())

    def test_negative_rate_rejected(self):
        class Negative(FairShareNoCapPolicy):
            def allocate(self, P, tasks):
                return {t.task_id: -1.0 for t in tasks}

        inst = Instance(P=2, tasks=[Task(1, 1, 2)])
        with pytest.raises(SimulationError):
            simulate(inst, Negative())

    def test_bad_release_times(self, small_instance):
        with pytest.raises(SimulationError):
            simulate(small_instance, WdeqPolicy(), release_times=[1.0])
        with pytest.raises(SimulationError):
            simulate(small_instance, WdeqPolicy(), release_times=[-1.0, 0, 0, 0])


class TestPolicyComparison:
    def test_default_policies_line_up(self, small_instance):
        policies = default_policies(small_instance)
        names = {p.name for p in policies}
        assert {"WDEQ", "DEQ"}.issubset(names)

    def test_compare_policies_runs_everything(self, small_instance):
        results = compare_policies(small_instance)
        assert set(results) == {p.name for p in default_policies(small_instance)}
        for result in results.values():
            assert np.all(result.completion_times > 0)

    def test_wdeq_beats_deq_on_weight_skewed_instance(self):
        inst = Instance(
            P=2, tasks=[Task(4, 10, 2), Task(4, 0.1, 2), Task(4, 0.1, 2)]
        )
        results = compare_policies(inst, policies=[WdeqPolicy(), DeqPolicy()])
        wdeq_value = results["WDEQ"].weighted_completion_time()
        deq_value = results["DEQ"].weighted_completion_time()
        assert wdeq_value <= deq_value + 1e-9
