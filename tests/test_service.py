"""Tests for the online scheduling service (repro.service).

Three layers, mirroring the package:

* :class:`repro.service.state.LiveSystemState` — the incremental
  simulation core, pinned **differentially** against a from-scratch
  :func:`repro.batch.sim_kernels.simulate_batch` over the full submission
  history: same completion times *and* the same event count, so the
  incremental path provably replays nothing and invents nothing;
* :meth:`repro.service.SchedulerService.handle` — the synchronous
  request/reply surface (admission control, rate limiting, error codes),
  exercised in-process without sockets;
* the asyncio TCP layer — NDJSON framing, concurrent clients, HTTP
  ``/metrics`` / ``/health`` on the same port, graceful drain, and the
  load generator.  Async tests run via ``asyncio.run`` inside plain pytest
  functions (no pytest-asyncio dependency).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.api import (
    CancelReply,
    CancelTask,
    ErrorReply,
    HealthReply,
    HealthRequest,
    MetricsRequest,
    QueryShare,
    QueryState,
    ShareReply,
    SimulateRequest,
    StateReply,
    SubmitReply,
    SubmitTask,
)
from repro.batch.sim_kernels import simulate_batch
from repro.core.batch import InstanceBatch
from repro.service import (
    LiveSystemState,
    LoadgenConfig,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    run_loadgen_async,
)
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.ratelimit import ClientRateLimiter, TokenBucket
from repro.service.state import DuplicateTaskError, UnknownTaskError, make_policy


def run(coro):
    """Drive one async test body to completion on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30.0))


# --------------------------------------------------------------------- #
# LiveSystemState: the incremental simulation core
# --------------------------------------------------------------------- #


class TestLiveSystemState:
    def test_single_task_runs_at_its_cap(self):
        live = LiveSystemState(P=4.0)
        record = live.submit(volume=6.0, weight=1.0, delta=3.0, now=0.0)
        assert live.share_of(record.task_id) == pytest.approx(3.0)
        live.advance_to(2.0)
        assert live.records[record.task_id].status == "completed"
        assert live.records[record.task_id].completion_time == pytest.approx(2.0)

    def test_delta_clamped_to_platform(self):
        live = LiveSystemState(P=2.0)
        record = live.submit(volume=2.0, delta=100.0, now=0.0)
        assert record.delta == pytest.approx(2.0)
        assert live.share_of(record.task_id) == pytest.approx(2.0)

    def test_cancel_frees_processors_for_the_survivor(self):
        live = LiveSystemState(P=4.0)
        a = live.submit(volume=4.0, delta=2.0, now=0.0)
        b = live.submit(volume=4.0, delta=2.0, now=0.0)
        assert live.cancel(a.task_id, now=0.5) is True
        live.advance_to(10.0)
        # b did 2 units by t=0.5 at rate 2... still rate 2 (delta caps it):
        # remaining 3 units at rate 2 -> completes at 0.5 + 3/2 = 2.0.
        assert live.records[b.task_id].completion_time == pytest.approx(2.0)
        assert live.records[a.task_id].status == "cancelled"
        assert live.cancel(b.task_id, now=11.0) is False  # already done

    def test_idle_gap_accrues_no_phantom_work(self):
        live = LiveSystemState(P=2.0)
        a = live.submit(volume=2.0, delta=2.0, now=0.0)  # completes at t=1
        live.advance_to(5.0)
        assert live.records[a.task_id].completion_time == pytest.approx(1.0)
        # System idle from t=1; submitting at t=9 must not backfill the gap.
        b = live.submit(volume=2.0, delta=2.0, now=9.0)
        live.advance_to(20.0)
        assert live.records[b.task_id].completion_time == pytest.approx(10.0)

    def test_time_is_clamped_monotonic(self):
        live = LiveSystemState(P=1.0)
        live.submit(volume=10.0, delta=1.0, now=2.0)
        live.advance_to(5.0)
        assert live.advance_to(1.0) == pytest.approx(5.0)  # no rewind
        assert live.now == pytest.approx(5.0)

    def test_errors(self):
        live = LiveSystemState(P=2.0)
        live.submit(volume=1.0, task_id="a", now=0.0)
        with pytest.raises(DuplicateTaskError):
            live.submit(volume=1.0, task_id="a", now=0.0)
        with pytest.raises(UnknownTaskError):
            live.cancel("nope", now=0.0)
        with pytest.raises(UnknownTaskError):
            live.share_of("nope")
        with pytest.raises(ValueError):
            live.submit(volume=-1.0, now=0.0)
        with pytest.raises(ValueError):
            LiveSystemState(P=0.0)
        with pytest.raises(ValueError):
            make_policy("bogus")

    def test_capacity_growth_and_compaction_preserve_the_trajectory(self):
        rng = np.random.default_rng(7)
        live = LiveSystemState(P=8.0)
        finished: "dict[str, float]" = {}
        # Enough churn to force several capacity doublings and compactions.
        for k in range(300):
            now = 0.05 * k
            live.submit(volume=rng.uniform(0.05, 0.3), delta=rng.uniform(0.5, 4.0), now=now)
            for task_id, record in live.records.items():
                if record.status == "completed" and task_id not in finished:
                    finished[task_id] = record.completion_time
        live.advance_to(1e9)
        compacted = live.compact()
        assert compacted > 0
        assert live.used_slots == live.live_count == 0
        # Completion times recorded before compaction survive it.
        for task_id, completion in finished.items():
            assert live.records[task_id].completion_time == pytest.approx(completion)
            assert live.records[task_id].slot == -1

    def test_project_completion_leaves_the_live_state_untouched(self):
        live = LiveSystemState(P=2.0)
        record = live.submit(volume=4.0, delta=2.0, now=0.0)
        events_before = live.total_events
        projected = live.project_completion(record.task_id)
        assert projected == pytest.approx(2.0)
        assert live.total_events == events_before
        assert live.records[record.task_id].status == "running"
        live.advance_to(10.0)
        assert live.records[record.task_id].completion_time == pytest.approx(projected)


class TestIncrementalMatchesFromScratch:
    """The headline differential: incremental == full re-simulation.

    A live system fed N submissions at increasing virtual times — with
    share queries interleaved at the submission boundaries — must
    reproduce the completion times *and the event count* of one
    from-scratch ``simulate_batch`` whose release times are the submit
    times.  Equal event counts prove the incremental path pauses exactly
    at the oracle's release events and nowhere else.  Queries at
    *arbitrary* intermediate times add one horizon-pause event each but
    may never change the trajectory — pinned separately below.
    """

    @staticmethod
    def _workload(seed: int, n: int = 60):
        rng = np.random.default_rng(seed)
        return (
            np.sort(rng.uniform(0.0, 5.0, n)),
            rng.uniform(0.2, 2.0, n),
            rng.uniform(0.5, 3.0, n),
            rng.uniform(0.5, 4.0, n),
        )

    @staticmethod
    def _oracle(policy, submit_times, volumes, weights, deltas):
        batch = InstanceBatch.from_arrays(
            P=np.array([6.0]),
            volumes=volumes[None, :],
            weights=weights[None, :],
            deltas=np.minimum(deltas, 6.0)[None, :],
        )
        return simulate_batch(
            batch, make_policy(policy), release_times=submit_times[None, :]
        )

    @pytest.mark.parametrize("policy", ["wdeq", "deq", "fair-share"])
    def test_event_for_event(self, policy):
        submit_times, volumes, weights, deltas = self._workload(42)
        rng = np.random.default_rng(99)
        live = LiveSystemState(P=6.0, policy=policy)
        ids = []
        for k in range(len(submit_times)):
            record = live.submit(
                volumes[k], weights[k], deltas[k], now=float(submit_times[k])
            )
            ids.append(record.task_id)
            if k % 7 == 3:  # queries at the submission boundary are free
                live.share_of(ids[rng.integers(0, len(ids))],
                              now=float(submit_times[k]))
        live.advance_to(1e9)

        oracle = self._oracle(policy, submit_times, volumes, weights, deltas)
        incremental = np.array(
            [live.records[task_id].completion_time for task_id in ids]
        )
        np.testing.assert_allclose(
            incremental, oracle.completion_times[0], rtol=1e-9, atol=1e-9
        )
        assert live.total_events == int(oracle.num_events[0])

    def test_arbitrary_query_times_pause_but_never_perturb(self):
        submit_times, volumes, weights, deltas = self._workload(42)
        rng = np.random.default_rng(7)
        live = LiveSystemState(P=6.0, policy="wdeq")
        ids, queries = [], 0
        for k in range(len(submit_times)):
            record = live.submit(
                volumes[k], weights[k], deltas[k], now=float(submit_times[k])
            )
            ids.append(record.task_id)
            if k % 5 == 1:  # mid-interval pauses: extra events, same path
                live.share_of(ids[rng.integers(0, len(ids))],
                              now=float(submit_times[k]) + 1e-3)
                queries += 1
        live.advance_to(1e9)

        oracle = self._oracle("wdeq", submit_times, volumes, weights, deltas)
        incremental = np.array(
            [live.records[task_id].completion_time for task_id in ids]
        )
        np.testing.assert_allclose(
            incremental, oracle.completion_times[0], rtol=1e-9, atol=1e-9
        )
        # Each mid-interval pause splits one step in two, at most.
        assert int(oracle.num_events[0]) <= live.total_events
        assert live.total_events <= int(oracle.num_events[0]) + queries

    def test_cancellation_differential(self):
        # After a cancellation, the remaining live tasks must follow the
        # oracle that simulates the *surviving* workload with the cancelled
        # task replaced by the volume it actually received.
        live = LiveSystemState(P=4.0)
        a = live.submit(volume=8.0, weight=2.0, delta=2.0, now=0.0)
        b = live.submit(volume=6.0, weight=1.0, delta=3.0, now=0.0)
        live.cancel(a.task_id, now=1.0)
        live.advance_to(100.0)

        work_a = 2.0  # a ran at its cap 2.0 for 1s (P=4 fits both caps)
        batch = InstanceBatch.from_arrays(
            P=np.array([4.0]),
            volumes=np.array([[work_a, 6.0]]),
            weights=np.array([[2.0, 1.0]]),
            deltas=np.array([[2.0, 3.0]]),
        )
        oracle = simulate_batch(batch, make_policy("wdeq"))
        assert live.records[b.task_id].completion_time == pytest.approx(
            float(oracle.completion_times[0, 1])
        )


# --------------------------------------------------------------------- #
# SchedulerService.handle: the in-process request surface
# --------------------------------------------------------------------- #


def virtual_service(**overrides) -> SchedulerService:
    config = ServiceConfig(virtual_time=True, **overrides)
    return SchedulerService(config)


class TestServiceHandle:
    def test_submit_share_cancel_state_flow(self):
        service = virtual_service(P=4.0)
        submit = service.handle(SubmitTask(volume=4.0, weight=2.0, delta=2.0, now=0.0))
        assert isinstance(submit, SubmitReply)
        assert submit.share == pytest.approx(2.0)

        share = service.handle(QueryShare(task_id=submit.task_id, project=True, now=0.5))
        assert isinstance(share, ShareReply)
        assert share.status == "running"
        assert share.remaining == pytest.approx(3.0)
        assert share.projected_completion == pytest.approx(2.0)

        cancel = service.handle(CancelTask(task_id=submit.task_id, now=1.0))
        assert isinstance(cancel, CancelReply)
        assert cancel.cancelled and cancel.status == "cancelled"

        state = service.handle(QueryState(now=2.0))
        assert isinstance(state, StateReply)
        assert (state.submitted, state.completed, state.cancelled) == (1, 0, 1)
        assert state.live_tasks == 0

    def test_error_codes_are_structured(self):
        service = virtual_service()
        unknown = service.handle(QueryShare(task_id="nope"))
        assert isinstance(unknown, ErrorReply) and unknown.code == "unknown_task"
        service.handle(SubmitTask(volume=1.0, task_id="a", now=0.0))
        duplicate = service.handle(SubmitTask(volume=1.0, task_id="a", now=0.0))
        assert isinstance(duplicate, ErrorReply) and duplicate.code == "duplicate_task"
        invalid = service.handle(SubmitTask(volume=-1.0, now=0.0))
        assert isinstance(invalid, ErrorReply) and invalid.code == "invalid"
        foreign = service.handle("not a message")
        assert isinstance(foreign, ErrorReply) and foreign.code == "protocol"

    def test_admission_control_rejects_above_the_ceiling(self):
        service = virtual_service(max_live_tasks=2)
        assert isinstance(service.handle(SubmitTask(volume=9.0, now=0.0)), SubmitReply)
        assert isinstance(service.handle(SubmitTask(volume=9.0, now=0.0)), SubmitReply)
        rejected = service.handle(SubmitTask(volume=9.0, now=0.0))
        assert isinstance(rejected, ErrorReply)
        assert rejected.code == "admission_rejected"
        state = service.handle(QueryState(now=0.0))
        assert isinstance(state, StateReply) and state.rejected == 1
        # Capacity frees up once tasks finish: 9/8 P=8 -> done by t=3.
        service.handle(QueryState(now=100.0))
        assert isinstance(service.handle(SubmitTask(volume=1.0, now=100.0)), SubmitReply)

    def test_rate_limit_applies_per_client_but_spares_probes(self):
        service = virtual_service(rate_limit=1.0, rate_burst=2.0)
        ok = [service.handle(QueryState(now=0.0), client="hog") for _ in range(2)]
        assert all(isinstance(reply, StateReply) for reply in ok)
        limited = service.handle(QueryState(now=0.0), client="hog")
        assert isinstance(limited, ErrorReply) and limited.code == "rate_limited"
        # A different client has its own bucket; probes are never limited.
        assert isinstance(service.handle(QueryState(now=0.0), client="other"), StateReply)
        assert isinstance(service.handle(HealthRequest(), client="hog"), HealthReply)
        assert not isinstance(service.handle(MetricsRequest(), client="hog"), ErrorReply)

    def test_simulate_request_matches_the_kernel(self):
        service = virtual_service()
        request = SimulateRequest(
            P=4.0,
            volumes=(2.0, 4.0, 1.0),
            weights=(1.0, 2.0, 1.0),
            deltas=(1.0, 2.0, 4.0),
            policy="wdeq",
        )
        reply = service.handle(request)
        batch = InstanceBatch.from_arrays(
            P=np.array([4.0]),
            volumes=np.array([[2.0, 4.0, 1.0]]),
            weights=np.array([[1.0, 2.0, 1.0]]),
            deltas=np.array([[1.0, 2.0, 4.0]]),
        )
        oracle = simulate_batch(batch, make_policy("wdeq"))
        np.testing.assert_allclose(reply.completion_times, oracle.completion_times[0])
        assert reply.num_events == int(oracle.num_events[0])
        bad = service.handle(SimulateRequest(P=4.0, volumes=(), weights=(), deltas=()))
        assert isinstance(bad, ErrorReply) and bad.code == "invalid"

    def test_metrics_account_for_requests(self):
        service = virtual_service()
        service.handle(SubmitTask(volume=1.0, now=0.0))
        service.handle(QueryShare(task_id="nope"))
        reply = service.handle(MetricsRequest())
        metrics = reply.metrics
        # The snapshot is taken before the metrics request itself is counted.
        assert metrics["counters"]["requests_total"] == 2.0
        assert metrics["counters"]["errors.unknown_task"] == 1.0
        assert metrics["histograms"]["latency.submit_task"]["count"] == 1.0
        assert metrics["gauges"]["live_tasks"] == 1.0


# --------------------------------------------------------------------- #
# Metrics and rate-limiting primitives
# --------------------------------------------------------------------- #


class TestPrimitives:
    def test_token_bucket_refills_lazily(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.allow() and bucket.allow() and not bucket.allow()
        clock[0] = 0.5  # +1 token
        assert bucket.allow() and not bucket.allow()
        clock[0] = 100.0  # refill is capped at burst
        assert bucket.allow() and bucket.allow() and not bucket.allow()

    def test_client_limiter_lru_eviction(self):
        clock = [0.0]
        limiter = ClientRateLimiter(rate=1.0, burst=1.0, max_clients=2, clock=lambda: clock[0])
        assert limiter.allow("a") and limiter.allow("b")
        assert not limiter.allow("a")  # a's bucket is empty; b is now LRU
        assert not limiter.allow("a")  # ... and stays empty while tracked
        limiter.allow("c")  # evicts the LRU entry ("b")
        assert limiter.allow("b")  # b returns with a fresh bucket
        disabled = ClientRateLimiter(rate=0.0)
        assert not disabled.enabled
        assert all(disabled.allow("x") for _ in range(1000))

    def test_latency_histogram_percentiles_are_conservative(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.008, 0.1):
            hist.observe(value)
        assert hist.count == 5
        # rank(50%, 5 obs) = 2: the reported value is the *upper* bound of
        # the bucket holding the 2nd observation — never under-reporting.
        assert 0.002 <= hist.percentile(50) <= 0.002 * 1.1
        assert 0.008 <= hist.percentile(90) <= 0.008 * 1.1
        assert hist.percentile(100) >= hist.max * 0.999
        summary = hist.summary()
        assert summary["count"] == 5.0
        assert summary["mean"] == pytest.approx(hist.mean)
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 1.0))

    def test_registry_snapshot_is_json_representable(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.observe("lat", 0.01)
        registry.register_gauge("depth", lambda: 3)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"]["hits"] == 1.0
        assert snapshot["gauges"]["depth"] == 3.0


# --------------------------------------------------------------------- #
# The asyncio TCP layer
# --------------------------------------------------------------------- #


class _running_service:
    """Async context manager: a started service on an ephemeral port."""

    def __init__(self, **overrides):
        self.service = SchedulerService(ServiceConfig(port=0, **overrides))

    async def __aenter__(self) -> SchedulerService:
        await self.service.start()
        return self.service

    async def __aexit__(self, *exc_info: object) -> None:
        await self.service.shutdown()


class TestTcpService:
    def test_client_round_trip(self):
        async def body():
            async with _running_service(P=4.0, virtual_time=True) as service:
                host, port = service.address
                async with ServiceClient(host, port, client_id="t1") as client:
                    submit = await client.submit(volume=4.0, delta=2.0, now=0.0)
                    assert submit.share == pytest.approx(2.0)
                    share = await client.share(submit.task_id, project=True, now=0.0)
                    assert share.projected_completion == pytest.approx(2.0)
                    health = await client.health()
                    assert health.status == "ok"
                    with pytest.raises(ServiceError) as excinfo:
                        await client.share("missing")
                    assert excinfo.value.code == "unknown_task"
                    state = await client.state()
                    assert state.submitted == 1

        run(body())

    def test_concurrent_clients_share_one_live_system(self):
        async def body():
            async with _running_service(P=16.0, virtual_time=True) as service:
                host, port = service.address

                async def one_client(i: int) -> int:
                    async with ServiceClient(host, port, client_id=f"c{i}") as client:
                        for k in range(10):
                            await client.submit(volume=0.5, task_id=f"c{i}-{k}", now=0.0)
                        return (await client.state()).submitted

                totals = await asyncio.gather(*(one_client(i) for i in range(8)))
                assert max(totals) == 80  # every submission landed exactly once
                assert service.state.submitted == 80

        run(body())

    def test_malformed_lines_get_structured_errors_and_the_connection_lives(self):
        async def body():
            async with _running_service() as service:
                host, port = service.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["type"] == "error" and reply["code"] == "protocol"
                # The same connection still serves well-formed requests.
                writer.write(json.dumps({"type": "health"}).encode() + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["type"] == "health_reply" and reply["status"] == "ok"
                writer.close()
                await writer.wait_closed()
                assert service.metrics.counters["protocol_errors_total"] == 1.0

        run(body())

    def test_http_metrics_and_health_on_the_same_port(self):
        async def body():
            async with _running_service() as service:
                host, port = service.address

                async def http_get(path: str) -> "tuple[str, dict]":
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    head, _, body_bytes = raw.partition(b"\r\n\r\n")
                    return head.split(b"\r\n")[0].decode(), json.loads(body_bytes)

                status, payload = await http_get("/health")
                assert status == "HTTP/1.0 200 OK"
                assert payload["status"] == "ok"
                status, payload = await http_get("/metrics")
                assert status == "HTTP/1.0 200 OK"
                assert "counters" in payload["metrics"]
                status, payload = await http_get("/bogus")
                assert status.startswith("HTTP/1.0 404")

        run(body())

    def test_graceful_drain_refuses_submits_then_stops(self):
        async def body():
            service = SchedulerService(ServiceConfig(port=0, drain_grace=0.2))
            await service.start()
            host, port = service.address
            serve_task = asyncio.create_task(service.serve_forever(install_signals=False))
            try:
                async with ServiceClient(host, port) as client:
                    await client.submit(volume=1.0)
                    service.request_drain()
                    with pytest.raises(ServiceError) as excinfo:
                        await client.submit(volume=1.0)
                    assert excinfo.value.code == "draining"
                    health = await client.health()
                    assert health.draining and health.status == "draining"
                    # Queries still work while draining.
                    assert (await client.state()).submitted == 1
                await asyncio.wait_for(serve_task, timeout=5.0)
            finally:
                serve_task.cancel()

        run(body())

    def test_loadgen_replays_cleanly(self):
        async def body():
            async with _running_service(P=32.0) as service:
                host, port = service.address
                config = LoadgenConfig(
                    host=host,
                    port=port,
                    clients=8,
                    tasks_per_client=6,
                    arrival="bursty-poisson",
                    rate=500.0,
                    query_ratio=0.5,
                    cancel_ratio=0.2,
                    seed=3,
                )
                report = await run_loadgen_async(config)
                assert report.protocol_errors == 0
                assert report.errors == 0
                assert report.submitted == 8 * 6
                assert report.replies == report.requests
                assert report.rps > 0
                assert 0.0 < report.latency["p50"] <= report.latency["p99"]
                assert service.state.submitted == 48
                json.dumps(report.to_dict())  # CI artefact must serialise

        run(body())

    def test_loadgen_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(host="h", port=1, clients=0).validate()
        with pytest.raises(ValueError):
            LoadgenConfig(host="h", port=1, arrival="bogus").validate()
