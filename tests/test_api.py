"""Tests for the stable facade: repro.api messages and the lazy repro exports.

The api module is the single schema shared by the wire protocol, the client
and in-process callers, so the encode/decode pair must be lossless for every
message type and *strict* on malformed payloads (structured
:class:`~repro.api.ProtocolError`, never a bare ``TypeError``).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    MESSAGE_TYPES,
    REPLY_TYPES,
    REQUEST_TYPES,
    CancelReply,
    ErrorReply,
    HealthReply,
    MetricsReply,
    ProtocolError,
    QueryShare,
    ShareReply,
    SimulateReply,
    SimulateRequest,
    StateReply,
    SubmitReply,
    SubmitTask,
    decode_message,
    encode_message,
    message_type,
)

#: One representative instance per message type, non-default everywhere.
_EXAMPLES = [
    SubmitTask(
        volume=4.0,
        weight=2.0,
        delta=3.0,
        task_id="job-1",
        client="c1",
        now=1.5,
        idempotency_key="sub-1",
    ),
    MESSAGE_TYPES["cancel_task"](task_id="job-1", client="c1", now=2.0, idempotency_key="can-1"),
    QueryShare(task_id="job-1", project=True, client="c1", now=2.5),
    MESSAGE_TYPES["query_state"](now=3.0),
    MESSAGE_TYPES["metrics"](),
    MESSAGE_TYPES["health"](),
    SimulateRequest(
        P=4.0,
        volumes=(1.0, 2.0),
        weights=(1.0, 3.0),
        deltas=(2.0, 2.0),
        policy="deq",
        release_times=(0.0, 0.5),
    ),
    SubmitReply(task_id="job-1", now=1.5, share=2.0, live_tasks=3, deduplicated=True),
    CancelReply(task_id="job-1", cancelled=True, now=2.0, status="cancelled"),
    ShareReply(
        task_id="job-1",
        status="running",
        share=2.0,
        remaining=1.25,
        now=2.5,
        completion_time=None,
        projected_completion=3.125,
    ),
    StateReply(now=3.0, live_tasks=2, submitted=5, completed=2, cancelled=1, rejected=0),
    MetricsReply(metrics={"counters": {"requests_total": 7}}),
    HealthReply(
        status="ok",
        now=3.0,
        live_tasks=2,
        draining=False,
        durable=True,
        recovered_events=4,
        recovery_seconds=0.25,
    ),
    SimulateReply(
        completion_times=(1.0, 2.0), weighted_completion_time=7.0, makespan=2.0, num_events=2
    ),
    ErrorReply(code="rate_limited", message="slow down"),
]


class TestRoundTrips:
    @pytest.mark.parametrize("message", _EXAMPLES, ids=lambda m: type(m).__name__)
    def test_encode_decode_is_lossless(self, message):
        payload = encode_message(message)
        assert payload["type"] == message_type(message)
        assert decode_message(payload) == message

    @pytest.mark.parametrize("message", _EXAMPLES, ids=lambda m: type(m).__name__)
    def test_payload_survives_json(self, message):
        # The wire carries JSON: the dict must serialise, and the decoded
        # object (tuples becoming lists) must still rebuild the dataclass.
        wire = json.loads(json.dumps(encode_message(message)))
        assert decode_message(wire) == message

    def test_every_registered_type_is_covered(self):
        assert {type(m) for m in _EXAMPLES} == set(MESSAGE_TYPES.values())
        assert set(REQUEST_TYPES) | set(REPLY_TYPES) == set(MESSAGE_TYPES.values())

    def test_all_messages_are_frozen_dataclasses(self):
        for cls in MESSAGE_TYPES.values():
            assert dataclasses.is_dataclass(cls)
            assert cls.__dataclass_params__.frozen  # type: ignore[attr-defined]
        with pytest.raises(dataclasses.FrozenInstanceError):
            _EXAMPLES[0].volume = 1.0  # type: ignore[misc]

    def test_tuple_fields_decode_to_tuples(self):
        request = decode_message(
            {"type": "simulate", "P": 2.0, "volumes": [1.0], "weights": [1.0], "deltas": [1.0]}
        )
        assert isinstance(request, SimulateRequest)
        assert request.volumes == (1.0,)
        assert hash(request) == hash(request)  # tuples keep it hashable


class TestStrictDecoding:
    def test_unknown_type_tag(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message({"type": "frobnicate"})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message({"volume": 1.0})

    def test_non_mapping_payload(self):
        with pytest.raises(ProtocolError, match="expected a mapping"):
            decode_message(["submit_task"])  # type: ignore[arg-type]

    def test_unexpected_field(self):
        with pytest.raises(ProtocolError, match="unexpected field 'priority'"):
            decode_message({"type": "submit_task", "volume": 1.0, "priority": 9})

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="invalid 'submit_task' message"):
            decode_message({"type": "submit_task"})

    def test_foreign_object_has_no_wire_tag(self):
        with pytest.raises(ProtocolError, match="not a repro.api message type"):
            message_type(object())
        with pytest.raises(ProtocolError):
            encode_message({"type": "submit_task"})  # dicts are not messages


class TestFacadeExports:
    def test_blessed_entrypoints_resolve_lazily(self):
        import repro

        from repro.exec import ExecutionContext
        from repro.lp.batch import optimal
        from repro.service import SchedulerService

        assert repro.ExecutionContext is ExecutionContext
        assert repro.optimal is optimal
        assert repro.SchedulerService is SchedulerService

    def test_dir_lists_the_facade(self):
        import repro

        listing = dir(repro)
        for name in ("ExecutionContext", "simulate_batch", "optimal", "SchedulerService"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError, match="no_such_symbol"):
            repro.no_such_symbol
