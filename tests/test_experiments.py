"""Tests for the experiment harness (tiny configurations).

These tests run every experiment with very small parameters: they check that
the harness wires the algorithms together correctly and that the paper's
qualitative claims hold on the miniature runs (they do — the claims are
theorems or very robust empirical statements).
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.report import render_markdown_report, run_all


class TestRegistry:
    def test_all_nine_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 10)}

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1").experiment_id == "E1"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("E42")


class TestExperimentRuns:
    def test_e1_conjecture12_holds(self):
        result = run_experiment("E1", sizes=(2, 3), count=4, families=("uniform",))
        assert isinstance(result, ExperimentResult)
        assert result.summary["conjecture holds on every instance"] is True

    def test_e2_symmetry_holds(self):
        result = run_experiment("E2", sizes=(3, 8), count=4, max_orders=30)
        assert result.summary["symmetry holds on every instance"] is True

    def test_e3_orderings(self):
        result = run_experiment("E3", sizes=(2, 3, 4), count=4, five_task_count=2)
        assert result.summary["paper's n<=3 orders always optimal"] is True
        assert result.summary["measured n<=4 pattern (1,3,2 / 1,3,4,2) always optimal"] is True
        assert result.summary["5-task necessary condition always satisfied"] is True

    def test_e4_theorem11(self):
        result = run_experiment("E4", sizes=(2, 3), count=4)
        assert result.summary["greedy always optimal"] is True

    def test_e5_wdeq_ratio_below_two(self):
        result = run_experiment(
            "E5", small_sizes=(2, 3), small_count=4, large_sizes=(8,), large_count=2
        )
        assert result.summary["always below 2"] is True

    def test_e6_preemptions(self):
        result = run_experiment("E6", sizes=(5, 10), count=2)
        key = "fractional change bound (Theorem 9) respected on every instance"
        assert result.summary[key] is True

    def test_e7_scaling_produces_rows(self):
        result = run_experiment(
            "E7", sizes=(10,), lp_sizes=(5,), simplex_sizes=(5,), batch_sizes=()
        )
        assert len(result.rows) == 2
        assert result.summary["table I coverage rows"] == 9

    def test_e7_batch_throughput_rows(self):
        result = run_experiment(
            "E7",
            sizes=(),
            lp_sizes=(),
            simplex_sizes=(),
            batch_sizes=(16,),
            batch_task_count=8,
            lp_batch_task_count=4,
        )
        assert len(result.rows) == 3
        assert result.rows[0][0] == "B=16 x n=8"
        assert result.rows[1][0] == "B=16 x n=8 (event sim)"
        assert result.rows[2][0] == "B=16 x n=4 (ordered LP)"
        assert "wdeq_batch speedup (B=16)" in result.summary
        assert "simulate_batch speedup (B=16)" in result.summary
        assert "lp_batch speedup (B=16)" in result.summary

    def test_e8_bandwidth(self):
        result = run_experiment("E8", worker_counts=(5,), count=2)
        assert result.summary["WDEQ >= best naive strategy on average"] is True

    def test_e9_normal_form(self):
        result = run_experiment("E9", small_sizes=(3,), large_sizes=(8,), count=2)
        assert result.summary["all normalised schedules valid"] is True
        assert float(result.summary["max completion-time deviation"]) <= 1e-6

    def test_rendering(self):
        result = run_experiment("E1", sizes=(2,), count=2, families=("uniform",))
        text = result.to_text()
        markdown = result.to_markdown()
        assert "[E1]" in text
        assert "### E1" in markdown
        assert "Paper claim" in text


class TestReport:
    def test_run_all_selected(self):
        results = run_all(experiment_ids=["E3"], count=2, sizes=(2,), five_task_count=1)
        assert len(results) == 1
        report = render_markdown_report(results)
        assert "# Experiment results" in report
        assert "E3" in report
