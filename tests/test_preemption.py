"""Tests for the integer conversion and preemption accounting (Theorems 9-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.exceptions import InvalidScheduleError
from repro.core.validation import validate_processor_assignment
from repro.algorithms.preemption import (
    assign_processors,
    integer_allocation_change_count,
    integer_allocation_profile,
)
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.analysis.preemptions import preemption_report
from tests.conftest import random_instance


def wf_from_wdeq(instance):
    completions = wdeq_schedule(instance).completion_times_by_task()
    return water_filling_schedule(instance, completions)


class TestIntegerProfile:
    def test_counts_respect_platform(self, rng):
        for _ in range(8):
            inst = random_instance(rng, n=6, P=4.0, integer=True)
            profile = integer_allocation_profile(wf_from_wdeq(inst))
            totals = profile.counts.sum(axis=0)
            assert np.all(totals <= profile.num_processors)

    def test_volumes_preserved(self, rng):
        for _ in range(8):
            inst = random_instance(rng, n=6, P=4.0, integer=True)
            profile = integer_allocation_profile(wf_from_wdeq(inst))
            volumes = profile.counts @ profile.interval_lengths()
            np.testing.assert_allclose(volumes, inst.volumes, rtol=1e-6, atol=1e-6)

    def test_counts_within_floor_ceil_of_caps(self, rng):
        for _ in range(8):
            inst = random_instance(rng, n=5, P=4.0, integer=True)
            profile = integer_allocation_profile(wf_from_wdeq(inst))
            for i in range(inst.n):
                assert profile.counts[i].max(initial=0) <= int(np.ceil(inst.deltas[i] + 1e-9))

    def test_non_integer_platform_rejected(self):
        inst = Instance(P=2.5, tasks=[Task(1, 1, 1)])
        sched = wdeq_schedule(inst)
        with pytest.raises(InvalidScheduleError):
            integer_allocation_profile(sched)

    def test_change_count_nonnegative_and_linear_in_n(self, rng):
        inst = random_instance(rng, n=6, P=4.0, integer=True)
        sched = wf_from_wdeq(inst)
        changes = integer_allocation_change_count(sched)
        assert changes >= 0


class TestStickyAssignment:
    def test_assignment_is_valid(self, rng):
        for _ in range(6):
            inst = random_instance(rng, n=5, P=4.0, integer=True)
            sched = wf_from_wdeq(inst)
            assignment = assign_processors(sched)
            validate_processor_assignment(assignment)

    def test_tasks_never_finish_late(self, rng):
        for _ in range(6):
            inst = random_instance(rng, n=5, P=4.0, integer=True)
            sched = wf_from_wdeq(inst)
            assignment = assign_processors(sched)
            lateness = assignment.completion_times() - sched.completion_times_by_task()
            assert float(np.max(lateness)) <= 1e-6

    def test_single_task_no_preemption(self):
        inst = Instance(P=2, tasks=[Task(volume=2, delta=2)])
        sched = water_filling_schedule(inst, [1.0])
        assignment = assign_processors(sched)
        assert assignment.count_preemptions() == 0

    def test_sequential_tasks_no_preemption(self):
        inst = Instance(P=1, tasks=[Task(1, 1, 1), Task(1, 1, 1)])
        sched = water_filling_schedule(inst, [1.0, 2.0])
        assignment = assign_processors(sched)
        assert assignment.count_preemptions() == 0


class TestPreemptionReport:
    def test_report_bounds_hold(self, rng):
        for _ in range(6):
            n = int(rng.integers(2, 8))
            inst = random_instance(rng, n=n, P=4.0, integer=True)
            completions = wdeq_schedule(inst).completion_times_by_task()
            report = preemption_report(inst, completions)
            assert report.n == n
            assert report.fractional_bound == n
            assert report.integer_bound == 3 * n
            # Theorem 9 (paper accounting) must hold; the raw count may add at
            # most one change per task (the entry into saturation).
            assert report.fractional_changes <= n
            assert report.fractional_changes_raw <= 2 * n
            assert report.within_bounds

    def test_report_counts_consistency(self, rng):
        inst = random_instance(rng, n=6, P=4.0, integer=True)
        completions = wdeq_schedule(inst).completion_times_by_task()
        report = preemption_report(inst, completions)
        assert report.fractional_changes <= report.fractional_changes_raw
        assert report.preemptions >= 0
        assert report.migrations >= 0
