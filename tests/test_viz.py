"""Tests for the text Gantt charts and table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.algorithms.preemption import assign_processors
from repro.algorithms.water_filling import water_filling_schedule
from repro.algorithms.wdeq import wdeq_schedule
from repro.core.schedule import ColumnSchedule
from repro.viz.gantt import render_allocation_chart, render_processor_gantt
from repro.viz.tables import format_markdown_table, format_table


@pytest.fixture
def instance() -> Instance:
    return Instance(P=2, tasks=[Task(2, 1, 1, name="alpha"), Task(2, 1, 2, name="beta")])


class TestGantt:
    def test_allocation_chart_contains_task_symbols(self, instance):
        sched = wdeq_schedule(instance)
        chart = render_allocation_chart(sched, width=40)
        assert "A" in chart and "B" in chart
        assert "alpha" in chart and "beta" in chart

    def test_allocation_chart_from_continuous(self, instance):
        sched = wdeq_schedule(instance).to_continuous()
        chart = render_allocation_chart(sched, width=30, height=4)
        assert len(chart.splitlines()) >= 5

    def test_empty_schedule(self):
        inst = Instance(P=1, tasks=[])
        sched = ColumnSchedule(inst, [], [], np.zeros((0, 0)))
        assert "empty" in render_allocation_chart(sched)

    def test_processor_gantt(self, instance):
        sched = water_filling_schedule(instance, wdeq_schedule(instance).completion_times_by_task())
        assignment = assign_processors(sched)
        chart = render_processor_gantt(assignment, width=40)
        assert chart.count("P1") == 1 and chart.count("P2") == 1

    def test_many_tasks_legend_truncated(self):
        inst = Instance(P=4, tasks=[Task(1, 1, 1) for _ in range(15)])
        chart = render_allocation_chart(wdeq_schedule(inst), width=30)
        assert "..." in chart

    def test_allocation_chart_explicit_height(self, instance):
        chart = render_allocation_chart(wdeq_schedule(instance), width=20, height=6)
        # height rows + axis + legend
        assert len(chart.splitlines()) == 8

    def test_allocation_chart_symbols_cycle_past_62_tasks(self):
        inst = Instance(P=70, tasks=[Task(1, 1, 1) for _ in range(65)])
        chart = render_allocation_chart(wdeq_schedule(inst), width=12, height=4)
        assert "..." in chart  # legend truncated, symbols wrapped without error

    def test_allocation_chart_axis_shows_horizon(self, instance):
        sched = wdeq_schedule(instance)
        chart = render_allocation_chart(sched, width=40)
        horizon = f"{sched.completion_times[-1]:.3g}"
        assert chart.splitlines()[-2].endswith(horizon)

    def test_processor_gantt_empty_schedule(self):
        inst = Instance(P=2, tasks=[Task(2, 1, 1), Task(2, 1, 2)])
        sched = water_filling_schedule(inst, wdeq_schedule(inst).completion_times_by_task())
        assignment = assign_processors(sched)
        empty = type(assignment)(
            instance=inst,
            num_processors=assignment.num_processors,
            segments=[[] for _ in assignment.segments],
        )
        assert "empty" in render_processor_gantt(empty)

    def test_processor_gantt_legend_truncated(self):
        inst = Instance(P=14, tasks=[Task(1, 1, 1) for _ in range(14)])
        sched = water_filling_schedule(inst, wdeq_schedule(inst).completion_times_by_task())
        chart = render_processor_gantt(assign_processors(sched), width=20)
        assert "..." in chart
        assert chart.count("|") >= 2 * int(inst.P)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[1]

    def test_format_table_floats_rounded(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.23457" in text

    def test_markdown_table(self):
        md = format_markdown_table(["col1", "col2"], [[1, 2], [3, 4]])
        assert md.splitlines()[0] == "| col1 | col2 |"
        assert "|---|---|" in md

    def test_markdown_table_pads_missing_cells(self):
        md = format_markdown_table(["a", "b", "c"], [[1, 2]])
        assert md.splitlines()[-1].count("|") == 4
