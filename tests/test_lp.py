"""Tests for the LP layer: formulation, simplex backend, SciPy backend, interface."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.bounds import squashed_area_bound
from repro.core.exceptions import InvalidScheduleError, SolverError
from repro.core.validation import validate_column_schedule
from repro.lp.formulation import build_ordered_lp
from repro.lp.interface import solve_ordered_relaxation
from repro.lp.scipy_backend import solve_with_scipy
from repro.lp.simplex import solve_linear_program
from tests.conftest import random_instance


class TestFormulation:
    def test_variable_layout(self, small_instance):
        lp = build_ordered_lp(small_instance, [0, 1, 2, 3])
        n = small_instance.n
        assert lp.num_column_vars == n
        assert lp.num_variables == n + n * (n + 1) // 2
        assert lp.c[0] == small_instance.weights[0]

    def test_objective_follows_order(self, small_instance):
        order = [2, 0, 3, 1]
        lp = build_ordered_lp(small_instance, order)
        np.testing.assert_allclose(lp.c[:4], small_instance.weights[list(order)])

    def test_invalid_order_rejected(self, small_instance):
        with pytest.raises(InvalidScheduleError):
            build_ordered_lp(small_instance, [0, 0, 1, 2])

    def test_volume_constraints_rows(self, small_instance):
        lp = build_ordered_lp(small_instance, [0, 1, 2, 3])
        assert lp.A_eq.shape[0] == small_instance.n
        np.testing.assert_allclose(lp.b_eq, small_instance.volumes)

    def test_extract_helpers(self, small_instance):
        lp = build_ordered_lp(small_instance, [0, 1, 2, 3])
        solution = solve_with_scipy(lp)
        C = lp.extract_completion_times(solution.x)
        assert np.all(np.diff(C) >= -1e-9)
        rates = lp.extract_rates(solution.x)
        assert rates.shape == (4, 4)


class TestSimplexSolver:
    def test_simple_minimization(self):
        # min -x - y s.t. x + y <= 1, x, y >= 0 -> optimum -1.
        result = solve_linear_program(
            c=np.array([-1.0, -1.0]),
            A_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.0]),
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.0)

    def test_equality_constraints(self):
        # min x + 2y s.t. x + y = 2 -> x = 2, y = 0.
        result = solve_linear_program(
            c=np.array([1.0, 2.0]),
            A_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([2.0]),
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)
        np.testing.assert_allclose(result.x, [2.0, 0.0], atol=1e-9)

    def test_infeasible(self):
        # x <= -1 with x >= 0 is infeasible.
        result = solve_linear_program(
            c=np.array([1.0]), A_ub=np.array([[1.0]]), b_ub=np.array([-1.0]),
            A_eq=np.array([[1.0]]), b_eq=np.array([5.0]),
        )
        assert result.status == "infeasible"

    def test_unbounded(self):
        result = solve_linear_program(c=np.array([-1.0]))
        assert result.status == "unbounded"

    def test_negative_rhs_inequality(self):
        # -x <= -2  <=>  x >= 2; min x -> 2.
        result = solve_linear_program(
            c=np.array([1.0]), A_ub=np.array([[-1.0]]), b_ub=np.array([-2.0])
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_dimension_mismatch(self):
        with pytest.raises(SolverError):
            solve_linear_program(c=np.array([1.0, 2.0]), A_ub=np.ones((1, 3)), b_ub=np.ones(1))

    def test_pivot_limit_raises(self, rng):
        c = rng.normal(size=4)
        A = rng.normal(size=(3, 4))
        b = rng.uniform(0.5, 2.0, size=3)
        with pytest.raises(SolverError):
            solve_linear_program(c, A_ub=A, b_ub=b, max_iterations=1)

    def test_negative_equality_rhs_is_sign_normalised(self):
        # -x - y = -2 is the same constraint as x + y = 2.
        result = solve_linear_program(
            c=np.array([1.0, 2.0]),
            A_eq=np.array([[-1.0, -1.0]]),
            b_eq=np.array([-2.0]),
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_redundant_equality_rows(self):
        # Duplicated equality rows leave an artificial in the basis at value
        # zero after phase 1; the drive-out path must still find the optimum.
        result = solve_linear_program(
            c=np.array([1.0, 1.0]),
            A_eq=np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]),
            b_eq=np.array([2.0, 2.0, 4.0]),
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_rhs_size_mismatch(self):
        with pytest.raises(SolverError):
            solve_linear_program(
                c=np.array([1.0]), A_ub=np.ones((2, 1)), b_ub=np.ones(3)
            )

    def test_matches_scipy_on_random_lps(self, rng):
        from scipy.optimize import linprog

        for _ in range(10):
            nvar, m = 4, 3
            c = rng.normal(size=nvar)
            A = rng.normal(size=(m, nvar))
            b = rng.uniform(0.5, 2.0, size=m)
            ours = solve_linear_program(c, A_ub=A, b_ub=b)
            ref = linprog(c, A_ub=A, b_ub=b, bounds=[(0, None)] * nvar, method="highs")
            if ref.status == 3:
                assert ours.status == "unbounded"
            else:
                assert ours.is_optimal
                assert ours.objective == pytest.approx(ref.fun, abs=1e-7)


class TestScipyBackendStatuses:
    def test_infeasible_lp_reported(self, small_instance):
        lp = build_ordered_lp(small_instance, [0, 1, 2, 3])
        lp.b_eq = -np.ones_like(lp.b_eq)  # sum of non-negatives = -1
        result = solve_with_scipy(lp)
        assert result.status == "infeasible"
        assert np.isnan(result.objective)

    def test_unbounded_lp_reported(self, small_instance):
        from repro.lp.formulation import OrderedLP

        lp = OrderedLP(
            instance=small_instance,
            order=(0,),
            c=np.array([-1.0]),
            A_ub=np.zeros((0, 1)),
            b_ub=np.zeros(0),
            A_eq=np.zeros((0, 1)),
            b_eq=np.zeros(0),
            num_column_vars=1,
            area_index={},
        )
        result = solve_with_scipy(lp)
        assert result.status == "unbounded"
        assert result.objective == -np.inf


class TestOrderedRelaxation:
    def test_backends_agree(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=3)
            order = list(rng.permutation(3))
            a = solve_ordered_relaxation(inst, order, backend="scipy")
            b = solve_ordered_relaxation(inst, order, backend="simplex")
            assert a.objective == pytest.approx(b.objective, rel=1e-6, abs=1e-9)

    def test_schedule_is_valid(self, small_instance):
        solution = solve_ordered_relaxation(small_instance, small_instance.smith_order())
        validate_column_schedule(solution.schedule)

    def test_schedule_completion_order_matches(self, small_instance):
        order = small_instance.smith_order()
        solution = solve_ordered_relaxation(small_instance, order)
        assert solution.schedule.order == tuple(order)

    def test_uncapped_instance_matches_smith(self, uncapped_instance):
        # With delta_i = P, the best ordering LP value equals the squashed
        # area bound (Smith's rule), and the Smith ordering achieves it.
        solution = solve_ordered_relaxation(uncapped_instance, uncapped_instance.smith_order())
        assert solution.objective == pytest.approx(
            squashed_area_bound(uncapped_instance), rel=1e-6
        )

    def test_best_order_is_at_least_lower_bounds(self, small_instance):
        best = min(
            solve_ordered_relaxation(small_instance, order, build_schedule=False).objective
            for order in itertools.permutations(range(small_instance.n))
        )
        assert best >= squashed_area_bound(small_instance) - 1e-9

    def test_build_schedule_false_skips_reconstruction(self, small_instance):
        solution = solve_ordered_relaxation(
            small_instance, small_instance.smith_order(), build_schedule=False
        )
        assert solution.schedule is None
        assert solution.objective > 0

    def test_empty_instance(self):
        empty = Instance(P=1, tasks=[])
        solution = solve_ordered_relaxation(empty, [])
        assert solution.objective == 0.0

    def test_single_task_value(self):
        inst = Instance(P=4, tasks=[Task(volume=6, weight=2, delta=3)])
        solution = solve_ordered_relaxation(inst, [0])
        assert solution.objective == pytest.approx(2 * 2.0)

    def test_unknown_backend(self, small_instance):
        with pytest.raises(SolverError):
            solve_ordered_relaxation(small_instance, small_instance.smith_order(), backend="bogus")
