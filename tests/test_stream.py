"""Streaming trace ingestion: validation, round trips, online aggregation.

Covers the four silent-corruption bugfixes of the trace loader (empty
``release`` cells, reappearing instance keys, silent ``delta`` clamping,
ignored arrival processes), the chunked reader's equivalence with the
in-memory path (including a Hypothesis round-trip property over ragged
traces in both formats), the streamed ``policies`` pipeline
(:func:`repro.scenarios.stream.replay_stream`), and the append/merge
aggregation of :mod:`repro.scenarios.store`.
"""

from __future__ import annotations

import json
import math
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import InstanceBatch
from repro.core.exceptions import InvalidInstanceError
from repro.exec import ExecutionContext
from repro.scenarios import ResultsStore, ScenarioSpec, SweepRunner, merge_records
from repro.scenarios.families import build_cell_workload, load_trace
from repro.scenarios.store import summary_table
from repro.scenarios.stream import (
    StreamingMoments,
    iter_trace_rows,
    replay_stream,
    stream_trace,
)

SCENARIO_DIR = pathlib.Path(__file__).resolve().parent.parent / "scenarios"
SAMPLE_TRACE = SCENARIO_DIR / "traces" / "sample_trace.csv"

HEADER = "instance,volume,weight,delta,release"


def write_csv(path, rows, header=HEADER):
    path.write_text("\n".join([header, *rows]) + "\n", encoding="utf-8")
    return path


def write_jsonl(path, rows):
    path.write_text("".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8")
    return path


# --------------------------------------------------------------------- #
# Bugfix regressions: the four silent-corruption modes now raise/warn
# --------------------------------------------------------------------- #


class TestValidation:
    def test_empty_release_cell_raises_naming_row(self, tmp_path):
        """Bugfix 1: an empty release cell used to become a silent 0.0."""
        trace = write_csv(
            tmp_path / "t.csv",
            ["a,1.0,1.0,2.0,0.5", "a,1.0,1.0,2.0,", "b,1.0,1.0,2.0,0.7"],
        )
        with pytest.raises(InvalidInstanceError, match=r"data row 2.*release"):
            load_trace(trace, P=8.0)

    def test_missing_jsonl_release_raises_naming_row(self, tmp_path):
        trace = write_jsonl(
            tmp_path / "t.jsonl",
            [
                {"instance": "a", "volume": 1.0, "weight": 1.0, "delta": 2.0, "release": 0.1},
                {"instance": "b", "volume": 1.0, "weight": 1.0, "delta": 2.0},
            ],
        )
        with pytest.raises(InvalidInstanceError, match=r"data row 2.*release"):
            load_trace(trace, P=8.0)

    def test_reappearing_instance_key_raises(self, tmp_path):
        """Bugfix 2: non-consecutive rows of one key used to split silently."""
        trace = write_csv(
            tmp_path / "t.csv",
            [
                "a,1.0,1.0,2.0,0.1",
                "b,1.0,1.0,2.0,0.2",
                "a,2.0,1.0,2.0,0.3",  # 'a' reappears after its group closed
            ],
        )
        with pytest.raises(InvalidInstanceError, match=r"data row 3.*'a' reappears"):
            load_trace(trace, P=8.0)

    def test_nonpositive_delta_raises(self, tmp_path):
        """Bugfix 3a: delta must be positive (0 used to clamp to min(0, P))."""
        trace = write_csv(tmp_path / "t.csv", ["a,1.0,1.0,0.0,0.1"])
        with pytest.raises(InvalidInstanceError, match=r"data row 1.*delta must be positive"):
            load_trace(trace, P=8.0)

    def test_delta_clamp_warns_once_with_row_number(self, tmp_path):
        """Bugfix 3b: delta > P still clamps, but loudly (one warning/file)."""
        trace = write_csv(
            tmp_path / "t.csv",
            ["a,1.0,1.0,9.5,0.1", "a,1.0,1.0,12.0,0.2", "b,1.0,1.0,2.0,0.3"],
        )
        with pytest.warns(UserWarning, match=r"delta=9.5 exceeds P=8.0 first at data row 1"):
            instances, _ = load_trace(trace, P=8.0)
        assert [t.delta for t in instances[0].tasks] == [8.0, 8.0]

    def test_committed_sample_trace_is_clean(self):
        """The shipped trace must not trip any of the new validation."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            instances, releases = load_trace(SAMPLE_TRACE, P=8.0)
        assert len(instances) == 8 and releases is not None

    def test_arrival_conflicting_with_trace_releases_raises(self, tmp_path):
        """Bugfix 4: a synthetic arrival on a release-carrying trace used to
        be silently ignored — the trace's releases won unannounced."""
        with pytest.raises(InvalidInstanceError, match="supplies release times.*conflicts"):
            build_cell_workload(
                "trace_replay",
                {"trace": str(SAMPLE_TRACE), "P": 8.0},
                4,
                {"process": "poisson", "rate": 1.0},
                {},
                seed=0,
            )

    def test_arrival_trace_process_accepted_with_releases(self):
        instances, releases = build_cell_workload(
            "trace_replay",
            {"trace": str(SAMPLE_TRACE), "P": 8.0},
            4,
            {"process": "trace"},
            {},
            seed=0,
        )
        assert releases is not None and len(instances) == 4

    def test_arrival_trace_process_without_release_column_raises(self, tmp_path):
        trace = write_csv(
            tmp_path / "t.csv", ["a,1.0,1.0,2.0"], header="instance,volume,weight,delta"
        )
        with pytest.raises(InvalidInstanceError, match="requires a 'release' column"):
            build_cell_workload(
                "trace_replay",
                {"trace": str(trace), "P": 8.0},
                4,
                {"process": "trace"},
                {},
                seed=0,
            )

    def test_synthetic_arrival_still_works_without_release_column(self, tmp_path):
        trace = write_csv(
            tmp_path / "t.csv",
            ["a,1.0,1.0,2.0", "b,2.0,1.0,2.0"],
            header="instance,volume,weight,delta",
        )
        instances, releases = build_cell_workload(
            "trace_replay",
            {"trace": str(trace), "P": 8.0},
            2,
            {"process": "poisson", "rate": 2.0},
            {},
            seed=0,
        )
        assert releases is not None and releases.shape == (2, 1)

    @pytest.mark.parametrize(
        "row, message",
        [
            ("a,-1.0,1.0,2.0,0.1", "volume must be positive"),
            ("a,1.0,-0.5,2.0,0.1", "weight must be non-negative"),
            ("a,oops,1.0,2.0,0.1", "not a number"),
            ("a,inf,1.0,2.0,0.1", "must be finite"),
            (",1.0,1.0,2.0,0.1", "'instance' is empty"),
        ],
    )
    def test_bad_fields_raise_naming_row(self, tmp_path, row, message):
        trace = write_csv(tmp_path / "t.csv", ["ok,1.0,1.0,2.0,0.1", row])
        with pytest.raises(InvalidInstanceError, match=f"data row 2.*{message}"):
            list(iter_trace_rows(trace))

    def test_missing_columns_raise(self, tmp_path):
        trace = write_csv(tmp_path / "t.csv", ["a,1.0"], header="instance,volume")
        with pytest.raises(InvalidInstanceError, match="must have columns"):
            list(iter_trace_rows(trace))

    def test_empty_trace_raises(self, tmp_path):
        trace = write_csv(tmp_path / "t.csv", [])
        with pytest.raises(InvalidInstanceError, match="contains no tasks"):
            load_trace(trace, P=8.0)

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(InvalidInstanceError, match="unknown trace format"):
            list(iter_trace_rows(tmp_path / "t.csv", fmt="xml"))

    def test_jsonl_inconsistent_release_presence_raises(self, tmp_path):
        trace = write_jsonl(
            tmp_path / "t.jsonl",
            [
                {"instance": "a", "volume": 1.0, "weight": 1.0, "delta": 2.0},
                {"instance": "b", "volume": 1.0, "weight": 1.0, "delta": 2.0, "release": 0.5},
            ],
        )
        with pytest.raises(InvalidInstanceError, match=r"data row 2.*unexpected 'release'"):
            load_trace(trace, P=8.0)

    def test_invalid_json_raises_naming_row(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"instance": "a", "volume": 1.0, "weight": 1, "delta": 1}\nnot json\n')
        with pytest.raises(InvalidInstanceError, match=r"data row 2"):
            load_trace(path, P=8.0)

    def test_max_instances_stops_reading_before_bad_rows(self, tmp_path):
        """Early stop is real: corruption after the cut is never parsed."""
        trace = write_csv(
            tmp_path / "t.csv",
            ["a,1.0,1.0,2.0,0.1", "b,1.0,1.0,2.0,0.2", "c,bad,1.0,2.0,0.3"],
        )
        instances, _ = load_trace(trace, P=8.0, max_instances=1)
        assert len(instances) == 1
        with pytest.raises(InvalidInstanceError, match="data row 3"):
            load_trace(trace, P=8.0)


# --------------------------------------------------------------------- #
# Streamed chunks == in-memory load (including the Hypothesis property)
# --------------------------------------------------------------------- #


@st.composite
def trace_instances(draw):
    """Ragged instance groups with finite positive parameters."""
    count = draw(st.integers(min_value=1, max_value=6))
    value = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)
    groups = []
    for i in range(count):
        n = draw(st.integers(min_value=1, max_value=4))
        groups.append(
            {
                "key": f"inst{i:03d}",
                "volumes": [draw(value) for _ in range(n)],
                "weights": [draw(value) for _ in range(n)],
                "deltas": [draw(st.floats(min_value=0.1, max_value=8.0, allow_nan=False))
                           for _ in range(n)],
                "releases": [draw(value) for _ in range(n)],
            }
        )
    return groups


def _groups_to_rows(groups, with_release):
    csv_rows, jsonl_rows = [], []
    for g in groups:
        for v, w, d, r in zip(g["volumes"], g["weights"], g["deltas"], g["releases"]):
            row = {"instance": g["key"], "volume": v, "weight": w, "delta": d}
            text = f"{g['key']},{v!r},{w!r},{d!r}"
            if with_release:
                row["release"] = r
                text += f",{r!r}"
            csv_rows.append(text)
            jsonl_rows.append(row)
    return csv_rows, jsonl_rows


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(groups=trace_instances(), with_release=st.booleans(),
           chunk_size=st.sampled_from([1, 2, 3, 1000]))
    def test_streamed_chunks_equal_inmemory_load(self, groups, with_release, chunk_size):
        """Synthesized trace -> streamed chunks -> to_instances equals the
        in-memory load_trace result, for ragged rows, both formats, any
        chunk size."""
        import tempfile

        csv_rows, jsonl_rows = _groups_to_rows(groups, with_release)
        header = HEADER if with_release else "instance,volume,weight,delta"
        with tempfile.TemporaryDirectory(prefix="stream_rt_") as tmp:
            tmp = pathlib.Path(tmp)
            write_csv(tmp / "t.csv", csv_rows, header=header)
            write_jsonl(tmp / "t.jsonl", jsonl_rows)
            expected_instances, expected_releases = load_trace(tmp / "t.csv", P=8.0)
            for name in ("t.csv", "t.jsonl"):
                chunks = list(stream_trace(tmp / name, P=8.0, chunk_size=chunk_size))
                instances = [i for c in chunks for i in c.batch.to_instances()]
                assert instances == expected_instances
                starts = [c.start for c in chunks]
                assert starts == sorted(starts) and starts[0] == 0
                if not with_release:
                    assert all(c.releases is None for c in chunks)
                    continue
                assert expected_releases is not None
                for chunk in chunks:
                    B, n_max = chunk.releases.shape
                    for b in range(B):
                        n = int(chunk.batch.counts[b])
                        row = expected_releases[chunk.start + b]
                        assert np.array_equal(chunk.releases[b, :n], row[:n])
                        assert np.all(chunk.releases[b, n:] == 0.0)

    def test_jsonl_and_csv_load_identically(self, tmp_path):
        groups = [
            {"key": "a", "volumes": [1.5, 2.0], "weights": [1.0, 0.5],
             "deltas": [2.0, 4.0], "releases": [0.1, 0.4]},
            {"key": "b", "volumes": [3.0], "weights": [2.0], "deltas": [1.0],
             "releases": [0.8]},
        ]
        csv_rows, jsonl_rows = _groups_to_rows(groups, with_release=True)
        write_csv(tmp_path / "t.csv", csv_rows)
        write_jsonl(tmp_path / "t.jsonl", jsonl_rows)
        from_csv = load_trace(tmp_path / "t.csv", P=8.0)
        from_jsonl = load_trace(tmp_path / "t.jsonl", P=8.0)
        assert from_csv[0] == from_jsonl[0]
        assert np.array_equal(from_csv[1], from_jsonl[1])

    def test_format_sniffing_without_extension(self, tmp_path):
        _, jsonl_rows = _groups_to_rows(
            [{"key": "a", "volumes": [1.0], "weights": [1.0], "deltas": [2.0],
              "releases": [0.1]}],
            with_release=True,
        )
        trace = write_jsonl(tmp_path / "trace.dat", jsonl_rows)
        instances, _ = load_trace(trace, P=8.0)
        assert len(instances) == 1


# --------------------------------------------------------------------- #
# Online accumulators
# --------------------------------------------------------------------- #


class TestStreamingMoments:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=40,
        ),
        pieces=st.integers(min_value=1, max_value=5),
    )
    def test_chunked_equals_single_pass(self, values, pieces):
        array = np.array(values)
        chunked = StreamingMoments()
        for part in np.array_split(array, pieces):
            chunked.update(part)
        single = StreamingMoments()
        single.update(array)
        assert chunked.count == single.count == array.size
        assert math.isclose(chunked.mean, array.mean(), rel_tol=1e-9, abs_tol=1e-6)
        assert chunked.max == array.max() and chunked.min == array.min()
        assert math.isclose(chunked.std, float(array.std()), rel_tol=1e-6, abs_tol=1e-6)

    def test_merge_matches_sequential_update(self):
        rng = np.random.default_rng(3)
        a_vals, b_vals = rng.normal(size=17), rng.normal(size=5)
        a, b = StreamingMoments(), StreamingMoments()
        a.update(a_vals)
        b.update(b_vals)
        merged = a.merge(b)
        both = StreamingMoments()
        both.update(np.concatenate([a_vals, b_vals]))
        assert merged.count == both.count
        assert math.isclose(merged.mean, both.mean, rel_tol=1e-12)
        assert math.isclose(merged.m2, both.m2, rel_tol=1e-9)
        # Merging with an empty accumulator is the identity.
        empty = StreamingMoments()
        assert a.merge(empty).mean == a.mean and empty.merge(a).count == a.count


# --------------------------------------------------------------------- #
# The streamed policies pipeline
# --------------------------------------------------------------------- #


def _records_close(a, b, rtol=1e-6):
    assert {r["label"] for r in a} == {r["label"] for r in b}
    by_label = {r["label"]: r for r in b}
    for record in a:
        other = by_label[record["label"]]
        assert record["count"] == other["count"]
        for name, value in record["metrics"].items():
            assert math.isclose(value, other["metrics"][name], rel_tol=rtol), (
                record["label"], name, value, other["metrics"][name],
            )


class TestReplayStream:
    def test_matches_inmemory_sweep_on_truncated_prefix(self):
        """The acceptance bar: a streamed sweep's summary table is
        tolerance-identical to the in-memory path on the same prefix."""
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / "trace_replay.toml").with_overrides(count=5)
        streamed_spec = spec.with_overrides(params={"chunk_size": 2})
        with ExecutionContext(seed=3, backend="vectorized") as ctx:
            in_memory = SweepRunner(spec, ctx).run()
        with ExecutionContext(seed=3, backend="vectorized") as ctx:
            streamed = SweepRunner(streamed_spec, ctx).run()
        assert summary_table(in_memory.records, spec.metrics)[0] == \
            summary_table(streamed.records, spec.metrics)[0]
        _records_close(streamed.records, in_memory.records)

    def test_streamed_spec_serial_equals_vectorized(self):
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / "trace_stream.toml").with_overrides(count=6)
        with ExecutionContext(seed=1) as ctx:
            serial = SweepRunner(spec, ctx).run()
        with ExecutionContext(seed=1, backend="vectorized") as ctx:
            vectorized = SweepRunner(spec, ctx).run()
        _records_close(serial.records, vectorized.records, rtol=1e-9)

    def test_weight_redistribution_matches_inmemory(self):
        spec = ScenarioSpec.from_toml(SCENARIO_DIR / "trace_replay.toml").with_overrides(
            count=8, weights={"dist": "pareto", "alpha": 1.4},
        )
        streamed_spec = spec.with_overrides(params={"chunk_size": 3})
        with ExecutionContext(seed=9, backend="vectorized") as ctx:
            in_memory = SweepRunner(spec, ctx).run()
        with ExecutionContext(seed=9, backend="vectorized") as ctx:
            streamed = SweepRunner(streamed_spec, ctx).run()
        # The chunk-by-chunk redraw threads one rng through the chunks, so
        # the drawn weights (not just their statistics) are identical.
        _records_close(streamed.records, in_memory.records)

    def test_synthetic_arrival_rejected_in_streaming_mode(self):
        with pytest.raises(InvalidInstanceError, match="synthetic arrivals"):
            replay_stream(
                SAMPLE_TRACE, 8.0, chunk_size=2,
                arrival={"process": "poisson", "rate": 1.0},
            )

    def test_map_batch_context_path_matches_inprocess(self):
        direct, total_direct = replay_stream(SAMPLE_TRACE, 8.0, chunk_size=3)
        with ExecutionContext(seed=0, workers=2) as ctx:
            pooled, total_pooled = replay_stream(SAMPLE_TRACE, 8.0, chunk_size=3, ctx=ctx)
        assert total_direct == total_pooled == 8
        assert direct == pooled  # bit-identical: same kernels, same inputs

    def test_on_chunk_sees_every_chunk(self):
        seen = []
        replay_stream(
            SAMPLE_TRACE, 8.0, chunk_size=3, policies=("WDEQ",),
            on_chunk=lambda chunk, metrics: seen.append(
                (chunk.start, chunk.batch.batch_size, set(metrics))
            ),
        )
        assert [s[:2] for s in seen] == [(0, 3), (3, 3), (6, 2)]
        assert all(s[2] == {"WDEQ"} for s in seen)


# --------------------------------------------------------------------- #
# Append/merge aggregation in the store
# --------------------------------------------------------------------- #


class TestMergeRecords:
    def _partial_records(self, tmp_path):
        """Partial per-chunk records via on_chunk, appended to a store."""
        store = ResultsStore(tmp_path / "store")
        totals = {}

        def on_chunk(chunk, chunk_metrics):
            store.append_records(
                {
                    "scenario": "trace-stream", "cell": 0, "params": {},
                    "label": label, "count": chunk.batch.batch_size, "seed": 0,
                    "metrics": metrics,
                }
                for label, metrics in chunk_metrics.items()
            )

        totals["per_policy"], totals["total"] = replay_stream(
            SAMPLE_TRACE, 8.0, chunk_size=3, on_chunk=on_chunk
        )
        return store, totals

    def test_merged_partials_equal_stream_totals(self, tmp_path):
        store, totals = self._partial_records(tmp_path)
        merged = merge_records(store.load())
        assert len(merged) == len(totals["per_policy"])
        for record in merged:
            assert record["count"] == totals["total"]
            expected = totals["per_policy"][record["label"]]
            for name, value in record["metrics"].items():
                assert math.isclose(value, expected[name], rel_tol=1e-9), (
                    record["label"], name,
                )

    def test_write_merged_summary_equals_single_pass_summary(self, tmp_path):
        store, totals = self._partial_records(tmp_path)
        merged_text = store.write_merged_summary(title="Sweep: trace-stream")
        single_records = [
            {
                "scenario": "trace-stream", "cell": 0, "params": {}, "label": label,
                "count": totals["total"], "seed": 0, "metrics": metrics,
            }
            for label, metrics in totals["per_policy"].items()
        ]
        single_store = ResultsStore(tmp_path / "single")
        single_text = single_store.write_summary(
            single_records, title="Sweep: trace-stream"
        )
        assert merged_text == single_text

    def test_merge_is_identity_on_unique_keys_and_idempotent(self):
        records = [
            {"scenario": "s", "cell": 0, "params": {}, "label": "A", "count": 2,
             "seed": 0, "metrics": {"mean_ratio": 1.5, "max_ratio": 2.0}},
            {"scenario": "s", "cell": 1, "params": {}, "label": "A", "count": 4,
             "seed": 1, "metrics": {"mean_ratio": 1.1, "max_ratio": 1.2}},
        ]
        merged = merge_records(records)
        assert [r["metrics"] for r in merged] == [r["metrics"] for r in records]
        assert merge_records(merged) == merged

    def test_merge_weights_means_and_maxes_extrema(self):
        merged = merge_records(
            [
                {"scenario": "s", "cell": 0, "params": {}, "label": "A", "count": 1,
                 "seed": 0, "metrics": {"mean_ratio": 1.0, "max_ratio": 3.0,
                                        "min_gap": 0.5}},
                {"scenario": "s", "cell": 0, "params": {}, "label": "A", "count": 3,
                 "seed": 0, "metrics": {"mean_ratio": 2.0, "max_ratio": 1.0,
                                        "min_gap": 0.25}},
            ]
        )
        assert len(merged) == 1
        record = merged[0]
        assert record["count"] == 4
        assert record["metrics"]["mean_ratio"] == pytest.approx((1.0 + 3 * 2.0) / 4)
        assert record["metrics"]["max_ratio"] == 3.0
        assert record["metrics"]["min_gap"] == 0.25


# --------------------------------------------------------------------- #
# Spec validation and the CLI streaming knobs
# --------------------------------------------------------------------- #


class TestSpecAndCli:
    def test_chunk_size_param_validated(self):
        with pytest.raises(ValueError, match="chunk_size must be a positive integer"):
            ScenarioSpec(
                name="bad", generator="trace_replay",
                params={"trace": str(SAMPLE_TRACE), "chunk_size": -4},
            )
        with pytest.raises(ValueError, match="format must be one of"):
            ScenarioSpec(
                name="bad", generator="trace_replay",
                params={"trace": str(SAMPLE_TRACE), "format": "xml"},
            )

    def test_unknown_trace_param_rejected_by_both_paths(self):
        from repro.scenarios.runner import run_cell

        for params in ({"bogus": 1}, {"bogus": 1, "chunk_size": 2}):
            spec = ScenarioSpec(
                name="bad", generator="trace_replay",
                params={"trace": str(SAMPLE_TRACE), "P": 8.0, **params},
            )
            payload = {
                "spec": spec.to_dict(),
                "cell": {"scenario": "bad", "index": 0, "params": {}, "seed": 0},
                "backend": "vectorized",
            }
            with pytest.raises(InvalidInstanceError, match="accepts only"):
                run_cell(payload)

    def test_cli_stream_chunk_and_trace_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results"
        code = main(
            [
                "sweep", str(SCENARIO_DIR / "trace_replay.toml"),
                "--trace", str(SAMPLE_TRACE), "--stream-chunk", "3",
                "--output-dir", str(out), "--backend", "vectorized",
            ]
        )
        assert code == 0
        assert "record(s)" in capsys.readouterr().out
        assert (out / "results.jsonl").is_file() and (out / "summary.md").is_file()

    def test_cli_stream_flags_rejected_for_synthetic_specs(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="trace_replay"):
            main(["sweep", "e5-policy-comparison", "--stream-chunk", "64"])

    def test_cli_stream_chunk_zero_forces_inmemory(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep", str(SCENARIO_DIR / "trace_stream.toml"),
                "--stream-chunk", "0", "--backend", "vectorized",
            ]
        )
        assert code == 0
        assert "record(s)" in capsys.readouterr().out
