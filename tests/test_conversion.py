"""Tests for the Theorem 3 conversions (repro.core.conversion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, Task
from repro.core.conversion import (
    column_to_continuous,
    column_to_processor_assignment,
    continuous_to_column,
    processor_assignment_to_continuous,
)
from repro.core.exceptions import InvalidScheduleError
from repro.core.schedule import ColumnSchedule
from repro.core.validation import (
    validate_column_schedule,
    validate_continuous_schedule,
    validate_processor_assignment,
)
from repro.algorithms.wdeq import wdeq_schedule
from tests.conftest import random_instance


@pytest.fixture
def fractional_schedule() -> ColumnSchedule:
    """A valid column schedule with genuinely fractional rates (P = 3)."""
    inst = Instance(P=3, tasks=[Task(3, 1, 2), Task(4.5, 2, 3), Task(1.5, 1, 1)])
    return wdeq_schedule(inst)


class TestColumnToContinuous:
    def test_round_trip_preserves_completion_times(self, fractional_schedule):
        continuous = column_to_continuous(fractional_schedule)
        validate_continuous_schedule(continuous)
        np.testing.assert_allclose(
            np.sort(continuous.completion_times()),
            np.sort(fractional_schedule.completion_times_by_task()),
            rtol=1e-9,
        )

    def test_objective_preserved(self, fractional_schedule):
        continuous = column_to_continuous(fractional_schedule)
        assert continuous.weighted_completion_time() == pytest.approx(
            fractional_schedule.weighted_completion_time()
        )

    def test_empty_instance(self):
        inst = Instance(P=1, tasks=[])
        sched = ColumnSchedule(inst, [], [], np.zeros((0, 0)))
        continuous = column_to_continuous(sched)
        assert continuous.n == 0


class TestContinuousToColumn:
    def test_round_trip(self, fractional_schedule):
        continuous = column_to_continuous(fractional_schedule)
        back = continuous_to_column(continuous)
        validate_column_schedule(back)
        np.testing.assert_allclose(
            back.completion_times_by_task(),
            fractional_schedule.completion_times_by_task(),
            rtol=1e-9,
        )

    def test_averaging_respects_caps_and_capacity(self, rng):
        # Theorem 3 (second half): averaging a valid continuous schedule per
        # column keeps it valid.
        for _ in range(5):
            inst = random_instance(rng, n=4, P=2.0)
            sched = wdeq_schedule(inst)
            continuous = column_to_continuous(sched)
            column = continuous_to_column(continuous)
            validate_column_schedule(column)


class TestColumnToProcessorAssignment:
    def test_integer_platform_required(self):
        inst = Instance(P=2.5, tasks=[Task(1, 1, 1)])
        sched = wdeq_schedule(inst)
        with pytest.raises(InvalidScheduleError):
            column_to_processor_assignment(sched)

    def test_assignment_valid_and_never_late(self, fractional_schedule):
        assignment = column_to_processor_assignment(fractional_schedule)
        validate_processor_assignment(assignment)
        # A task may finish *earlier* in the concrete assignment (its last
        # chunk can end before the column does) but never later, so the
        # objective can only improve.
        targets = fractional_schedule.completion_times_by_task()
        lateness = assignment.completion_times() - targets
        assert float(np.max(lateness)) <= 1e-6
        assert assignment.weighted_completion_time() <= (
            fractional_schedule.weighted_completion_time() + 1e-6
        )

    def test_task_uses_floor_or_ceil_processors(self, fractional_schedule):
        # Theorem 3: at every instant a task uses floor(d) or ceil(d)
        # processors; in particular never more than ceil(delta) <= delta for
        # integer caps.
        assignment = column_to_processor_assignment(fractional_schedule)
        inst = fractional_schedule.instance
        for i in range(inst.n):
            assert assignment.max_simultaneous_processors(i) <= int(np.ceil(inst.deltas[i]))

    def test_overfull_column_rejected(self):
        inst = Instance(P=1, tasks=[Task(1, 1, 1), Task(1, 1, 1)])
        rates = np.array([[1.0, 0.0], [1.0, 0.0]])  # both tasks at rate 1 in column 0
        sched = ColumnSchedule(inst, [0, 1], [1.0, 1.0], rates)
        with pytest.raises(InvalidScheduleError):
            column_to_processor_assignment(sched)

    def test_random_round_trip_volumes(self, rng):
        for _ in range(5):
            inst = random_instance(rng, n=5, P=4.0, integer=True)
            sched = wdeq_schedule(inst)
            assignment = column_to_processor_assignment(sched)
            np.testing.assert_allclose(
                assignment.processed_volumes(), inst.volumes, rtol=1e-6, atol=1e-6
            )


class TestProcessorAssignmentToContinuous:
    def test_round_trip_volumes(self, fractional_schedule):
        assignment = column_to_processor_assignment(fractional_schedule)
        continuous = processor_assignment_to_continuous(assignment)
        np.testing.assert_allclose(
            continuous.processed_volumes(),
            fractional_schedule.instance.volumes,
            rtol=1e-6,
            atol=1e-6,
        )

    def test_counts_are_integral(self, fractional_schedule):
        assignment = column_to_processor_assignment(fractional_schedule)
        continuous = processor_assignment_to_continuous(assignment)
        lengths = continuous.interval_lengths
        significant = lengths > 1e-9
        rates = continuous.rates[:, significant]
        np.testing.assert_allclose(rates, np.rint(rates), atol=1e-6)
