"""Tests for the Section V-B homogeneous greedy recurrence."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.algorithms.greedy import greedy_completion_times
from repro.algorithms.greedy_homogeneous import (
    homogeneous_best_order,
    homogeneous_greedy_completion_times,
    homogeneous_greedy_value,
    homogeneous_instance,
    is_homogeneous_instance,
)


class TestRecurrence:
    def test_single_task(self):
        np.testing.assert_allclose(
            homogeneous_greedy_completion_times([0.8]), [1 / 0.8]
        )

    def test_two_tasks_hand_computed(self):
        # delta = (1.0, 0.5): C1 = 1, C2 = 1 + (1 - 0*1)/0.5 = 3.
        np.testing.assert_allclose(
            homogeneous_greedy_completion_times([1.0, 0.5]), [1.0, 3.0]
        )

    def test_leftover_resource_used_by_next_task(self):
        # delta = (0.5, 0.5): column 1 leaves 0.5 for task 2, which therefore
        # has only 1 - 0.5*2 = 0 remaining?  No: leftover = (1-0.5)*2 = 1, so
        # task 2 completes exactly at C1 = 2... the recurrence gives C2 = 2.
        np.testing.assert_allclose(
            homogeneous_greedy_completion_times([0.5, 0.5]), [2.0, 2.0]
        )

    def test_matches_profile_based_greedy(self, rng):
        """The closed form must agree with the general greedy simulator."""
        for _ in range(20):
            n = int(rng.integers(1, 7))
            deltas = rng.uniform(0.5, 1.0, n)
            order = list(rng.permutation(n))
            closed_form = homogeneous_greedy_completion_times(deltas, order)
            inst = homogeneous_instance(deltas)
            simulated = greedy_completion_times(inst, order)
            # closed_form is indexed by scheduling position; re-index by task.
            by_task = np.zeros(n)
            for pos, task in enumerate(order):
                by_task[task] = closed_form[pos]
            np.testing.assert_allclose(by_task, simulated, rtol=1e-9, atol=1e-9)

    def test_value_is_sum_of_completions(self):
        deltas = [0.9, 0.6, 0.7]
        value = homogeneous_greedy_value(deltas)
        assert value == pytest.approx(homogeneous_greedy_completion_times(deltas).sum())

    def test_invalid_order(self):
        with pytest.raises(InvalidScheduleError):
            homogeneous_greedy_completion_times([0.6, 0.7], order=[0, 0])

    def test_delta_out_of_range(self):
        with pytest.raises(InvalidInstanceError):
            homogeneous_greedy_completion_times([0.4, 0.8])
        with pytest.raises(InvalidInstanceError):
            homogeneous_greedy_completion_times([1.2])


class TestConjecture13:
    def test_reversal_symmetry_exhaustive_small(self, rng):
        """Conjecture 13: value(order) == value(reversed order)."""
        for _ in range(10):
            n = int(rng.integers(2, 7))
            deltas = rng.uniform(0.5, 1.0, n)
            for order in itertools.permutations(range(n)):
                forward = homogeneous_greedy_value(deltas, order)
                backward = homogeneous_greedy_value(deltas, list(reversed(order)))
                assert forward == pytest.approx(backward, rel=1e-9)
                break  # one order per instance keeps the test fast

    def test_reversal_symmetry_up_to_15_tasks_sampled(self, rng):
        for n in (10, 15):
            deltas = rng.uniform(0.5, 1.0, n)
            for _ in range(5):
                order = list(rng.permutation(n))
                forward = homogeneous_greedy_value(deltas, order)
                backward = homogeneous_greedy_value(deltas, list(reversed(order)))
                assert forward == pytest.approx(backward, rel=1e-9)


class TestBestOrder:
    def test_best_order_beats_identity(self, rng):
        deltas = rng.uniform(0.5, 1.0, 5)
        order, value = homogeneous_best_order(deltas)
        assert value <= homogeneous_greedy_value(deltas) + 1e-12
        assert sorted(order) == list(range(5))

    def test_too_many_tasks_guarded(self):
        with pytest.raises(InvalidInstanceError):
            homogeneous_best_order([0.6] * 11)

    def test_empty(self):
        order, value = homogeneous_best_order([])
        assert order == ()
        assert value == 0.0


class TestInstanceHelpers:
    def test_homogeneous_instance_valid(self):
        inst = homogeneous_instance([0.5, 0.8, 1.0])
        assert inst.P == 1.0
        assert is_homogeneous_instance(inst)

    def test_homogeneous_instance_rejects_bad_delta(self):
        with pytest.raises(InvalidInstanceError):
            homogeneous_instance([0.3])

    def test_is_homogeneous_rejects_other_instances(self, small_instance):
        assert not is_homogeneous_instance(small_instance)
