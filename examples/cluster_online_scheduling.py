#!/usr/bin/env python3
"""Online scheduling of a malleable batch on a multicore cluster.

This example simulates a 64-core node receiving a batch of moldable/malleable
jobs (log-normal work, priority-class weights, power-of-two width caps) and
compares non-clairvoyant policies run through the event-driven engine:

* WDEQ — the paper's weighted dynamic equipartition (2-approximation),
* DEQ — unweighted equipartition,
* weighted fair share ignoring the width caps,
* a strict Smith-priority policy.

The objective ratios are reported against the Lemma 1 lower bound, so the
numbers are directly comparable with Theorem 4's guarantee of 2.

Run with:  python examples/cluster_online_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import combined_lower_bound
from repro.simulation import compare_policies
from repro.viz.tables import format_table
from repro.workloads.generators import cluster_instances


def main() -> None:
    rng = np.random.default_rng(2012)
    instance = next(cluster_instances(n=40, count=1, P=64.0, rng=rng))
    print(
        f"Cluster node with P = {instance.P:g} cores, {instance.n} malleable jobs, "
        f"total work {instance.total_volume:.1f} core-hours"
    )
    print()

    bound = combined_lower_bound(instance)
    results = compare_policies(instance)

    rows = []
    for name, result in sorted(
        results.items(), key=lambda kv: kv[1].weighted_completion_time()
    ):
        value = result.weighted_completion_time()
        rows.append(
            [
                name,
                f"{value:.1f}",
                f"{value / bound:.3f}",
                f"{result.makespan():.2f}",
                result.trace.num_reshares,
            ]
        )
    print(
        format_table(
            [
                "policy",
                "sum w_i C_i",
                "ratio to lower bound",
                "makespan",
                "reshare events",
            ],
            rows,
        )
    )
    print()
    print(
        f"Lemma 1 lower bound: {bound:.1f}.  Theorem 4 guarantees WDEQ stays within a\n"
        "factor 2 of the optimum; in practice it is much closer, and it clearly beats\n"
        "both the unweighted and the cap-oblivious baselines on weighted workloads."
    )


if __name__ == "__main__":
    main()
