#!/usr/bin/env python3
"""Quickstart: schedule a handful of malleable tasks and compare algorithms.

This example builds a small instance of work-preserving malleable tasks,
runs the paper's algorithms on it (non-clairvoyant WDEQ, clairvoyant greedy
and the exact optimum), prints their weighted completion times next to the
lower bounds, and draws a text Gantt chart of the best schedule.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, Task
from repro.algorithms import best_greedy_schedule, optimal_schedule, wdeq_schedule
from repro.core.bounds import combined_lower_bound, height_bound, squashed_area_bound
from repro.viz.gantt import render_allocation_chart
from repro.viz.tables import format_table


def main() -> None:
    # A platform of 4 processors and 4 tasks.  Each task has a total work
    # (volume), a weight (importance in the objective) and a cap on how many
    # processors it can use at once.
    instance = Instance(
        P=4,
        tasks=[
            Task(volume=4.0, weight=2.0, delta=2, name="render"),
            Task(volume=6.0, weight=1.0, delta=3, name="simulate"),
            Task(volume=2.0, weight=1.0, delta=1, name="index"),
            Task(volume=5.0, weight=3.0, delta=4, name="train"),
        ],
    )
    print(instance.describe())
    print()

    # Non-clairvoyant: WDEQ never looks at the volumes.
    wdeq = wdeq_schedule(instance)
    # Clairvoyant: best greedy schedule over all task orderings.
    greedy = best_greedy_schedule(instance)
    # Exact optimum: enumerate completion orderings, solve the Corollary 1 LP.
    optimal = optimal_schedule(instance)

    rows = [
        ["squashed area bound A(I)", f"{squashed_area_bound(instance):.4f}", "-"],
        ["height bound H(I)", f"{height_bound(instance):.4f}", "-"],
        ["combined lower bound", f"{combined_lower_bound(instance):.4f}", "-"],
        ["optimal (LP over orderings)", f"{optimal.objective:.4f}", "1.000"],
        [
            "best greedy (Conjecture 12)",
            f"{greedy.objective:.4f}",
            f"{greedy.objective / optimal.objective:.3f}",
        ],
        [
            "WDEQ (non-clairvoyant, Thm 4)",
            f"{wdeq.weighted_completion_time():.4f}",
            f"{wdeq.weighted_completion_time() / optimal.objective:.3f}",
        ],
    ]
    print(format_table(["quantity", "sum w_i C_i", "ratio to optimal"], rows))
    print()
    print("Optimal schedule (stacked allocation, one symbol per task):")
    print(render_allocation_chart(optimal.schedule, width=64, height=8))


if __name__ == "__main__":
    main()
