"""Scenario sweep walkthrough: bursty Poisson arrivals, programmatically.

The CLI equivalent is ``malleable-repro sweep scenarios/poisson_bursts.toml
--batch``; this script builds the same kind of sweep in code to show the
four moving parts — spec, grid expansion, runner, results store — and then
verifies the backend-independence claim by re-running the sweep on the
serial backend and comparing every metric.

Run with ``PYTHONPATH=src python examples/sweep_poisson_arrivals.py``.
"""

from __future__ import annotations

import tempfile

from repro.exec import ExecutionContext
from repro.scenarios import ResultsStore, ScenarioSpec, SweepRunner

# A scenario is data: a generator name, a parameter grid, an arrival
# process and a policy line-up.  The same dict shape loads from TOML.
spec = ScenarioSpec(
    name="poisson-bursts-example",
    description="gangs of 4 tasks released at Poisson burst times",
    generator="cluster_instances",
    params={"P": 64.0},
    grid={"n": (8, 16), "arrivals.rate": (0.5, 2.0)},
    count=6,
    policies=("WDEQ", "DEQ"),
    arrivals={"process": "bursty-poisson", "burst_size": 4, "spread": 0.05},
    metrics=("mean_ratio", "mean_makespan"),
)

# The grid expands deterministically: axes sorted by name, row-major.
for cell in spec.expand(base_seed=7):
    print(f"cell {cell.index}: {cell.label()} (seed {cell.seed})")

# Run vectorized: each cell is one simulate_batch call per policy.
with tempfile.TemporaryDirectory() as tmp:
    store = ResultsStore(tmp)
    with ExecutionContext(seed=7, backend="vectorized") as ctx:
        vectorized = SweepRunner(spec, ctx).run(store=store)
    print()
    print(vectorized.to_text())
    print(f"\npersisted {len(store.load())} records to {store.records_path}")

# The serial backend replays the identical workload through the scalar
# event engine — the summary metrics agree up to floating-point noise.
with ExecutionContext(seed=7) as ctx:
    serial = SweepRunner(spec, ctx).run()
worst = max(
    abs(a["metrics"][k] - b["metrics"][k])
    for a, b in zip(serial.records, vectorized.records)
    for k in a["metrics"]
)
print(f"\nserial vs vectorized: max metric disagreement {worst:.2e}")
