#!/usr/bin/env python3
"""Normalising a schedule with Water-Filling and counting preemptions.

Section IV of the paper shows that any valid schedule can be rebuilt from
its completion times alone (Algorithm WF, Theorem 8), that the rebuilt
schedule changes each task's allocation at most once on average (Theorem 9),
and that it can be mapped onto physical processors with few preemptions
(Theorem 10).  This example walks through the whole pipeline on a small
instance:

1. run WDEQ to obtain completion times,
2. rebuild the normal form with Water-Filling,
3. convert it to a concrete per-processor schedule,
4. report allocation changes and preemptions against the paper's bounds,
5. draw the per-processor Gantt chart.

Run with:  python examples/normal_form_preemptions.py
"""

from __future__ import annotations

from repro import Instance, Task
from repro.algorithms import (
    assign_processors,
    water_filling_schedule,
    wdeq_schedule,
)
from repro.analysis.preemptions import preemption_report
from repro.viz.gantt import render_processor_gantt
from repro.viz.tables import format_table


def main() -> None:
    instance = Instance(
        P=3,
        tasks=[
            Task(volume=3.0, weight=1.0, delta=2, name="etl"),
            Task(volume=4.5, weight=2.0, delta=3, name="solve"),
            Task(volume=1.5, weight=1.0, delta=1, name="report"),
            Task(volume=2.0, weight=1.5, delta=2, name="plot"),
        ],
    )
    print(instance.describe())
    print()

    # Step 1: any schedule provides completion times; here, WDEQ.
    wdeq = wdeq_schedule(instance)
    targets = wdeq.completion_times_by_task()
    print("completion times from WDEQ:", [f"{c:.3f}" for c in targets])

    # Step 2: Water-Filling rebuilds a schedule from those times alone.
    normal_form = water_filling_schedule(instance, targets)

    # Step 3: concrete processors via the incremental integer conversion.
    assignment = assign_processors(normal_form)

    # Step 4: preemption accounting against the paper's bounds.
    report = preemption_report(instance, targets)
    rows = [
        ["fractional allocation changes (paper accounting)", report.fractional_changes, f"<= n = {report.n}"],
        ["fractional allocation changes (all)", report.fractional_changes_raw, f"<= 2n = {2 * report.n}"],
        ["integer allocation changes", report.integer_changes, f"paper bound 3n = {3 * report.n}"],
        ["preemptions (sticky assignment)", report.preemptions, f"paper bound 3n = {3 * report.n}"],
        ["migrations", report.migrations, "-"],
    ]
    print()
    print(format_table(["quantity", "measured", "bound"], rows))

    # Step 5: what the processors actually execute.
    print()
    print("Per-processor Gantt chart of the normal form:")
    print(render_processor_gantt(assignment, width=64))


if __name__ == "__main__":
    main()
