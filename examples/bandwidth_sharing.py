#!/usr/bin/env python3
"""Bandwidth sharing on a master-worker platform (Figure 1 of the paper).

A server with a bounded outgoing link distributes application codes to
workers; each worker starts crunching jobs at its own rate as soon as its
code has fully arrived, and we want as many jobs as possible done by a
deadline.  The paper observes that this is exactly the malleable-task
weighted-completion-time problem: the server link is the platform ``P``,
each worker's access link is the cap ``delta_i``, its code size the volume
``V_i`` and its processing rate the weight ``w_i``.

The example compares four transfer strategies on a random scenario:
sequential FTP-style transfers, unweighted fair sharing (DEQ), the paper's
WDEQ, and a clairvoyant greedy schedule.

Run with:  python examples/bandwidth_sharing.py
"""

from __future__ import annotations

from repro.bandwidth import BandwidthScenario, Worker, plan_transfers
from repro.viz.tables import format_table


def main() -> None:
    # A 1 Gbit/s server feeding a small heterogeneous cluster.
    scenario = BandwidthScenario(
        server_bandwidth=1000.0,  # Mbit/s
        workers=[
            Worker("edge-1", code_size=800.0, incoming_bandwidth=100.0, processing_rate=2.0),
            Worker("edge-2", code_size=500.0, incoming_bandwidth=100.0, processing_rate=1.0),
            Worker("rack-1", code_size=1500.0, incoming_bandwidth=500.0, processing_rate=6.0),
            Worker("rack-2", code_size=1200.0, incoming_bandwidth=500.0, processing_rate=4.0),
            Worker("hpc-1", code_size=2000.0, incoming_bandwidth=1000.0, processing_rate=10.0),
        ],
    ).with_default_horizon(slack=2.0)

    print(
        f"Server bandwidth {scenario.server_bandwidth:g} Mbit/s, "
        f"{scenario.num_workers} workers, horizon T = {scenario.horizon:.1f} s"
    )
    print()

    plans = plan_transfers(scenario)
    rows = []
    for plan in sorted(plans, key=lambda p: -p.throughput(scenario)):
        rows.append(
            [
                plan.strategy,
                f"{plan.weighted_completion_time(scenario):,.0f}",
                f"{plan.throughput(scenario):,.0f}",
                f"{plan.throughput(scenario, clamp=False):,.0f}",
            ]
        )
    print(
        format_table(
            ["strategy", "sum w_i C_i (minimise)", "jobs done by T", "unclamped w_i (T - C_i)"],
            rows,
        )
    )
    print()
    print(
        "Minimising the weighted sum of code-arrival times and maximising the\n"
        "(unclamped) throughput rank the strategies identically - the equivalence\n"
        "the paper uses to motivate the malleable-task model."
    )


if __name__ == "__main__":
    main()
